"""Deterministic seeded process-pool map over shared-memory arrays.

The embedding pre-compute (random walks + SGNS) is embarrassingly
parallel *by shard*, but naive ``multiprocessing`` would pickle the
whole graph into every worker and make results depend on the worker
count.  This module fixes both:

* **shared-memory arrays** — read-only numpy inputs (CSR graphs, walk
  corpora, pair lists) are packed once into POSIX shared memory
  (:class:`SharedArrays`); workers attach zero-copy views by name.
* **deterministic sharding** — callers split work into a shard plan
  that depends only on the *problem* (never on the worker count) and
  draw one spawned :class:`numpy.random.SeedSequence` per shard, so
  ``workers=1`` and ``workers=N`` produce bit-identical results and
  :func:`parallel_map` merely changes how shards are scheduled.
* **serial fallback** — ``workers=1`` (the default) runs every shard
  in-process with no pool, no pickling, and no shared-memory setup;
  the parallel path is pure scheduling on top of the same shard code.

The worker count resolves explicit argument -> ``REPRO_WORKERS`` ->
``1``; the CLI's ``--workers`` flag sets the environment variable so
every embedding layer underneath picks it up.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np

__all__ = ["WORKERS_ENV", "resolve_workers", "spawn_seeds",
           "SharedArrays", "attach_shared", "parallel_map",
           "pool_context", "start_worker"]

#: Environment variable providing the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value -> ``REPRO_WORKERS`` -> 1.

    Values below 1 (or an unparseable environment variable) raise
    ``ValueError`` — silently degrading to serial would hide typos.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(f"{WORKERS_ENV}={raw!r} is not an integer")
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def spawn_seeds(rng: np.random.Generator, n: int) -> list:
    """``n`` independent child seed sequences spawned from ``rng``.

    One per *shard* (not per worker): the sequence of children depends
    only on the generator's state, so any worker count replays the
    same per-shard randomness.
    """
    return list(rng.bit_generator.seed_seq.spawn(n))


class SharedArrays:
    """Read-only numpy arrays packed into named shared-memory blocks.

    Built by the parent before the pool starts; workers attach by name
    with :func:`attach_shared` and get zero-copy views.  The parent
    owns the lifetime: call :meth:`close` (idempotent) once the pool
    has joined.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        from multiprocessing import shared_memory
        self._blocks: list = []
        self._specs: dict[str, tuple[str, tuple[int, ...], str]] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            block = shared_memory.SharedMemory(create=True,
                                               size=max(1, array.nbytes))
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=block.buf)
            view[...] = array
            self._blocks.append(block)
            self._specs[name] = (block.name, array.shape, array.dtype.str)

    def specs(self) -> dict[str, tuple[str, tuple[int, ...], str]]:
        """Picklable ``{name: (shm_name, shape, dtype)}`` attachment map."""
        return dict(self._specs)

    def close(self) -> None:
        """Release and unlink every block (idempotent)."""
        blocks, self._blocks = self._blocks, []
        for block in blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:
                pass


def attach_shared(specs: dict, untrack: bool = False) -> dict[str, np.ndarray]:
    """Attach worker-side views onto a :class:`SharedArrays` pack.

    The attached blocks live for the worker's lifetime (the pool joins
    before the parent unlinks).  On CPython < 3.13 attaching registers
    the segment with a resource tracker; pass ``untrack=True`` under
    the *spawn* start method, where the worker gets its own tracker
    that would otherwise unlink the parent's memory at worker exit.
    Forked workers share the parent's tracker and must leave the
    registration alone (the parent's unlink clears it exactly once).
    """
    from multiprocessing import shared_memory
    views: dict[str, np.ndarray] = {}
    for name, (shm_name, shape, dtype) in specs.items():
        block = shared_memory.SharedMemory(name=shm_name)
        if untrack:
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(block._name, "shared_memory")
            except Exception:
                pass  # best effort: tracker layouts differ across versions
        _ATTACHED_BLOCKS.append(block)
        views[name] = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                                 buffer=block.buf)
    return views


# Worker-process globals installed by the pool initializer.
_ATTACHED_BLOCKS: list = []
_WORKER_FN = None
_WORKER_SHARED: dict[str, np.ndarray] = {}


def _init_worker(fn, specs, untrack: bool) -> None:
    global _WORKER_FN, _WORKER_SHARED
    _WORKER_FN = fn
    _WORKER_SHARED = attach_shared(specs, untrack=untrack)


def _run_task(task):
    return _WORKER_FN(task, _WORKER_SHARED)


def pool_context():
    """The multiprocessing context this module schedules workers on.

    Prefers ``fork`` (zero-cost worker startup, shared-memory names are
    inherited) and falls back to ``spawn`` where fork is unavailable.
    Long-lived callers (the serving tier's dispatch layer) build their
    queues from the same context so queue and process semantics match.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


_pool_context = pool_context  # backward-compatible private alias


def _persistent_worker_entry(fn, specs, untrack, args):
    views = attach_shared(specs, untrack=untrack)
    fn(views, *args)


def start_worker(fn, args=(), *, pack=None, name=None, context=None):
    """Spawn one long-lived worker attached to a shared-memory pack.

    This is the persistent counterpart of :func:`parallel_map`: instead
    of a pool that drains a finite task list and joins, the worker runs
    ``fn(views, *args)`` for as long as it likes — typically a serve
    loop reading requests from a queue passed through ``args``.

    Parameters
    ----------
    fn:
        Module-level callable ``fn(views, *args)``; ``views`` maps array
        names to zero-copy read-only shared views (empty without
        ``pack``).
    pack:
        A :class:`SharedArrays` instance (or its :meth:`~SharedArrays.specs`
        dict) whose blocks the worker attaches on startup.  The caller
        owns the pack's lifetime and must keep it alive until every
        worker exited.
    name, context:
        Optional process name and multiprocessing context (defaults to
        :func:`pool_context`).

    Returns the started :class:`multiprocessing.Process` (daemonic, so
    orphaned workers die with the parent).  Respawning after a crash is
    just calling this again with the same arguments — the shared pack
    outlives any individual worker.
    """
    context = context if context is not None else pool_context()
    specs = pack.specs() if isinstance(pack, SharedArrays) \
        else dict(pack or {})
    untrack = context.get_start_method() != "fork"
    process = context.Process(target=_persistent_worker_entry,
                              args=(fn, specs, untrack, tuple(args)),
                              name=name, daemon=True)
    process.start()
    return process


def parallel_map(fn, tasks, *, workers: int | None = None,
                 shared: dict[str, np.ndarray] | None = None) -> list:
    """Map ``fn(task, shared)`` over ``tasks``, preserving task order.

    ``fn`` must be a module-level function (workers import it by
    qualified name under the spawn start method).  ``shared`` arrays
    are passed by reference serially and through shared memory in the
    pool; workers must treat them as read-only.  Results are returned
    in task order regardless of completion order, so callers get the
    same output for every worker count.
    """
    from ..telemetry import counter, gauge

    tasks = list(tasks)
    workers = resolve_workers(workers)
    counter("parallel.map.calls").inc()
    counter("parallel.map.tasks").inc(len(tasks))
    effective = min(workers, len(tasks)) if tasks else 1
    gauge("parallel.map.workers").set(effective)
    if effective <= 1:
        arrays = shared or {}
        return [fn(task, arrays) for task in tasks]

    counter("parallel.map.pooled_calls").inc()
    pack = SharedArrays(shared or {})
    context = _pool_context()
    untrack = context.get_start_method() != "fork"
    pool = context.Pool(processes=effective, initializer=_init_worker,
                        initargs=(fn, pack.specs(), untrack))
    try:
        results = pool.map(_run_task, tasks, chunksize=1)
        pool.close()
        pool.join()
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    finally:
        pack.close()
    return results
