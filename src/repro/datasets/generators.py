"""Synthetic generators for the paper's ten evaluation datasets.

Each ``make_*`` function returns a clean :class:`~repro.data.Table`
whose shape, type mix, distinct-value count, FD structure, and
value-frequency profile match the corresponding row of the paper's
Table 1 (see the module docstring of :mod:`repro.datasets.base` for why
this substitution is sound).  All generators are deterministic given a
seed and accept ``n_rows`` so tests and benchmarks can scale down.
"""

from __future__ import annotations

import numpy as np

from ..data import Table
from .base import (
    cluster_categorical,
    cluster_numerical,
    derived_column,
    sample_clusters,
    unique_strings,
    zipf_probabilities,
)

__all__ = [
    "make_adult",
    "make_australian",
    "make_contraceptive",
    "make_credit",
    "make_flare",
    "make_imdb",
    "make_mammogram",
    "make_tax",
    "make_thoracic",
    "make_tictactoe",
]


def _labels(prefix: str, k: int) -> list[str]:
    return [f"{prefix}{index}" for index in range(k)]


def make_adult(n_rows: int = 3016, seed: int = 0) -> Table:
    """Census-income style table: 9 categorical + 5 numerical columns and
    two planted FDs (``education -> education_num`` and
    ``relationship -> sex``)."""
    rng = np.random.default_rng(seed)
    clusters = sample_clusters(rng, n_rows, 24, alpha=0.7)

    education_values = _labels("edu", 16)
    education = cluster_categorical(rng, clusters, education_values,
                                    fidelity=0.8)
    education_rank = {value: float(rank + 1)
                      for rank, value in enumerate(education_values)}

    relationship_values = ["husband", "wife", "own-child", "not-in-family",
                           "other-relative", "unmarried"]
    relationship = cluster_categorical(rng, clusters, relationship_values,
                                       fidelity=0.75)
    relationship_sex = {"husband": "male", "wife": "female",
                        "own-child": "male", "not-in-family": "female",
                        "other-relative": "male", "unmarried": "female"}

    columns = {
        "workclass": cluster_categorical(rng, clusters, _labels("work", 8),
                                         fidelity=0.7, background_alpha=1.4),
        "education": education,
        "marital_status": cluster_categorical(rng, clusters, _labels("mar", 7),
                                              fidelity=0.75),
        "occupation": cluster_categorical(rng, clusters, _labels("occ", 14),
                                          fidelity=0.7),
        "relationship": relationship,
        "race": cluster_categorical(rng, clusters, _labels("race", 5),
                                    fidelity=0.6, background_alpha=1.8),
        "sex": derived_column(relationship, relationship_sex),
        "native_country": cluster_categorical(rng, clusters, _labels("cty", 40),
                                              fidelity=0.5,
                                              background_alpha=2.0),
        "income": cluster_categorical(rng, clusters, ["<=50K", ">50K"],
                                      fidelity=0.8),
        "age": [float(int(value)) for value in
                cluster_numerical(rng, clusters, 17, 90, noise=0.08)],
        "education_num": derived_column(education, education_rank),
        "capital_gain": [round(value, -2) for value in
                         cluster_numerical(rng, clusters, 0, 9999, noise=0.1)],
        "capital_loss": [round(value, -2) for value in
                         cluster_numerical(rng, clusters, 0, 3000, noise=0.1)],
        "hours_per_week": [float(int(value)) for value in
                           cluster_numerical(rng, clusters, 1, 99, noise=0.1)],
    }
    return Table(columns)


def _anonymous_mixed(n_rows: int, seed: int, n_categorical: int,
                     n_numerical: int, categorical_domains: list[int],
                     n_clusters: int) -> Table:
    """Shared machinery for the anonymized credit-scoring datasets
    (Australian and Credit): small-domain categoricals plus continuous
    numericals, all tied to latent clusters."""
    rng = np.random.default_rng(seed)
    clusters = sample_clusters(rng, n_rows, n_clusters, alpha=0.6)
    columns: dict[str, list] = {}
    for index in range(n_categorical):
        domain = categorical_domains[index % len(categorical_domains)]
        columns[f"A{index + 1}"] = cluster_categorical(
            rng, clusters, _labels(f"a{index + 1}_", domain),
            fidelity=0.75, background_alpha=1.2)
    for index in range(n_numerical):
        magnitude = index % 4
        # Rounding tracks the scale so every numeric column has a
        # comparable (a-few-hundred-values) domain, as in the UCI data.
        columns[f"N{index + 1}"] = cluster_numerical(
            rng, clusters, 0.0, 28.0 * 10.0 ** magnitude, noise=0.12,
            decimals=1 - magnitude)
    return Table(columns)


def make_australian(n_rows: int = 690, seed: int = 0) -> Table:
    """Australian credit approval: anonymized attributes, 9 categorical +
    6 continuous numerical columns (about a thousand distinct values)."""
    return _anonymous_mixed(n_rows, seed, n_categorical=9, n_numerical=6,
                            categorical_domains=[2, 3, 14, 8, 2, 2, 2, 3, 9],
                            n_clusters=14)


def make_contraceptive(n_rows: int = 1473, seed: int = 0) -> Table:
    """Contraceptive method choice: small ordinal domains (the 4-value
    attributes of the paper's Figure 12) plus two integer columns."""
    rng = np.random.default_rng(seed)
    clusters = sample_clusters(rng, n_rows, 10, alpha=0.5)
    ordinal = ["low", "mid", "high", "top"]
    columns = {
        "wife_edu": cluster_categorical(rng, clusters, ordinal, fidelity=0.7),
        "husband_edu": cluster_categorical(rng, clusters, ordinal, fidelity=0.7),
        "wife_religion": cluster_categorical(rng, clusters, ["yes", "no"],
                                             fidelity=0.6, background_alpha=1.5),
        "wife_working": cluster_categorical(rng, clusters, ["yes", "no"],
                                            fidelity=0.6, background_alpha=1.2),
        "husband_occ": cluster_categorical(rng, clusters, _labels("o", 4),
                                           fidelity=0.65),
        "living_std": cluster_categorical(rng, clusters, ordinal, fidelity=0.7,
                                          background_alpha=1.2),
        "media_exposure": cluster_categorical(rng, clusters, ["good", "poor"],
                                              fidelity=0.6,
                                              background_alpha=2.0),
        "method": cluster_categorical(rng, clusters,
                                      ["none", "long_term", "short_term"],
                                      fidelity=0.7),
        "wife_age": [float(int(value)) for value in
                     cluster_numerical(rng, clusters, 16, 49, noise=0.1)],
        "children": [float(int(value)) for value in
                     cluster_numerical(rng, clusters, 0, 13, noise=0.15)],
    }
    return Table(columns)


def make_credit(n_rows: int = 653, seed: int = 0) -> Table:
    """Credit approval: anonymized attributes, 10 categorical + 6
    continuous numerical columns."""
    return _anonymous_mixed(n_rows, seed, n_categorical=10, n_numerical=6,
                            categorical_domains=[2, 3, 3, 14, 9, 2, 2, 3, 2, 2],
                            n_clusters=12)


def make_flare(n_rows: int = 1066, seed: int = 0) -> Table:
    """Solar flare: tiny, heavily skewed domains (the high-:math:`F^+`,
    low-:math:`N^+` regime the paper calls easiest to impute)."""
    rng = np.random.default_rng(seed)
    clusters = sample_clusters(rng, n_rows, 6, alpha=1.2)
    columns: dict[str, list] = {}
    small_domains = [3, 3, 2, 2, 2, 2, 2, 2, 3, 2]
    for index, domain in enumerate(small_domains):
        columns[f"F{index + 1}"] = cluster_categorical(
            rng, clusters, _labels(f"f{index + 1}_", domain),
            fidelity=0.8, background_alpha=2.5)
    # Flare-count columns: integers that are almost always zero.
    for name, peak in [("c_class", 8), ("m_class", 5), ("x_class", 2)]:
        base = rng.poisson(0.15, size=n_rows).astype(float)
        columns[name] = list(np.minimum(base, peak))
    return Table(columns)


def make_imdb(n_rows: int = 4529, seed: int = 0) -> Table:
    """Movie table dominated by near-unique values (titles, people) —
    the low-:math:`F^+`, high-:math:`N^+` regime where all imputation
    methods struggle (§5)."""
    rng = np.random.default_rng(seed)
    clusters = sample_clusters(rng, n_rows, 40, alpha=0.6)

    def people(prefix: str, pool: int, alpha: float) -> list:
        names = _labels(prefix, pool)
        probabilities = zipf_probabilities(pool, alpha)
        return [names[index]
                for index in rng.choice(pool, size=n_rows, p=probabilities)]

    columns = {
        "title": unique_strings(rng, n_rows, "title", duplication=0.03),
        "director": people("director", max(2, n_rows // 3), alpha=1.1),
        "actor_1": people("actor", max(2, n_rows // 3), alpha=1.0),
        "actor_2": people("actor2_", max(2, n_rows // 3), alpha=1.0),
        "writer": people("writer", max(2, n_rows // 4), alpha=1.1),
        "production_co": people("studio", max(2, n_rows // 6), alpha=1.3),
        "country": cluster_categorical(rng, clusters, _labels("country", 30),
                                       fidelity=0.6, background_alpha=1.8),
        "language": cluster_categorical(rng, clusters, _labels("lang", 15),
                                        fidelity=0.6, background_alpha=2.0),
        "genre": cluster_categorical(rng, clusters, _labels("genre", 20),
                                     fidelity=0.6, background_alpha=1.2),
        "year": [float(int(value)) for value in
                 cluster_numerical(rng, clusters, 1930, 2015, noise=0.08)],
        "rating": [round(value, 1) for value in
                   cluster_numerical(rng, clusters, 1.0, 9.8, noise=0.1)],
    }
    return Table(columns)


def make_mammogram(n_rows: int = 830, seed: int = 0) -> Table:
    """Mammographic mass: five small categorical columns plus age."""
    rng = np.random.default_rng(seed)
    clusters = sample_clusters(rng, n_rows, 8, alpha=0.7)
    columns = {
        "birads": cluster_categorical(rng, clusters, _labels("b", 6),
                                      fidelity=0.7, background_alpha=1.0),
        "shape": cluster_categorical(rng, clusters,
                                     ["round", "oval", "lobular", "irregular"],
                                     fidelity=0.75),
        "margin": cluster_categorical(rng, clusters, _labels("m", 5),
                                      fidelity=0.7),
        "density": cluster_categorical(rng, clusters, _labels("d", 4),
                                       fidelity=0.6, background_alpha=1.8),
        "severity": cluster_categorical(rng, clusters, ["benign", "malignant"],
                                        fidelity=0.8),
        "age": [float(int(value)) for value in
                cluster_numerical(rng, clusters, 18, 96, noise=0.1)],
    }
    return Table(columns)


def make_tax(n_rows: int = 5000, seed: int = 0) -> Table:
    """Synthetic Tax benchmark with six planted FDs::

        zip -> city           zip -> state        areacode -> state
        state -> rate         marital_status -> single_exemp
        has_child -> child_exemp

    The geography is generated top-down (states own cities, cities own
    zips, states own area codes) so every FD holds exactly, matching the
    data-repair benchmark the paper uses in §4.3.
    """
    rng = np.random.default_rng(seed)
    n_states = 50
    n_cities = 200
    n_zips = 400
    n_areacodes = 100

    states = _labels("ST", n_states)
    city_state = {f"city{index:03d}": states[rng.integers(0, n_states)]
                  for index in range(n_cities)}
    cities = list(city_state)
    zip_city = {f"zip{index:04d}": cities[rng.integers(0, n_cities)]
                for index in range(n_zips)}
    zips = list(zip_city)
    zip_state = {zip_code: city_state[city] for zip_code, city in zip_city.items()}
    state_areacodes: dict[str, list[float]] = {state: [] for state in states}
    areacode_state: dict[float, str] = {}
    for index in range(n_areacodes):
        code = float(200 + index)
        state = states[index % n_states]
        state_areacodes[state].append(code)
        areacode_state[code] = state
    state_rate = {state: round(float(rng.uniform(0.0, 9.9)), 2)
                  for state in states}
    marital_values = ["single", "married", "divorced", "widowed"]
    marital_exemp = {"single": 1000.0, "married": 0.0,
                     "divorced": 500.0, "widowed": 500.0}
    child_exemp_map = {0.0: 0.0, 1.0: 2000.0}

    zip_probabilities = zipf_probabilities(n_zips, 1.0)
    row_zip = [zips[index] for index in
               rng.choice(n_zips, size=n_rows, p=zip_probabilities)]
    row_state = derived_column(row_zip, zip_state)
    row_areacode = [state_areacodes[state][rng.integers(
        0, len(state_areacodes[state]))] for state in row_state]
    row_marital = [marital_values[index] for index in
                   rng.choice(4, size=n_rows,
                              p=zipf_probabilities(4, 0.8))]
    row_has_child = [float(value) for value in rng.integers(0, 2, n_rows)]
    clusters = sample_clusters(rng, n_rows, 20, alpha=0.6)

    columns = {
        "gender": cluster_categorical(rng, clusters, ["male", "female"],
                                      fidelity=0.55),
        "state": row_state,
        "zip": row_zip,
        "city": derived_column(row_zip, zip_city),
        "marital_status": row_marital,
        "areacode": row_areacode,
        "salary": [round(value, -3) for value in
                   cluster_numerical(rng, clusters, 5000, 200000, noise=0.1)],
        "rate": derived_column(row_state, state_rate),
        "single_exemp": derived_column(row_marital, marital_exemp),
        "child_exemp": derived_column(row_has_child, child_exemp_map),
        "has_child": row_has_child,
        "deductions": [round(value, -2) for value in
                       cluster_numerical(rng, clusters, 0, 10000, noise=0.15)],
    }
    return Table(columns)


def make_thoracic(n_rows: int = 470, seed: int = 0) -> Table:
    """Thoracic surgery: 14 mostly-binary categorical columns heavily
    skewed toward ``"f"`` (the Figure 11 regime) plus three numericals."""
    rng = np.random.default_rng(seed)
    clusters = sample_clusters(rng, n_rows, 5, alpha=1.0)
    columns: dict[str, list] = {
        "diagnosis": cluster_categorical(rng, clusters, _labels("DGN", 7),
                                         fidelity=0.7, background_alpha=1.5),
        "performance": cluster_categorical(rng, clusters, _labels("PRZ", 3),
                                           fidelity=0.7, background_alpha=1.5),
        "tumor_size": cluster_categorical(rng, clusters, _labels("OC1", 4),
                                          fidelity=0.7, background_alpha=1.8),
    }
    for name in ["PRE7", "PRE8", "PRE9", "PRE10", "PRE11", "PRE17", "PRE19",
                 "PRE25", "PRE30", "PRE32", "risk1y"]:
        # Binary flags where "f" dominates (~90% of rows), as in Fig. 11.
        flips = rng.random(n_rows) < 0.1
        base = cluster_categorical(rng, clusters, ["f", "t"], fidelity=0.4,
                                   background_alpha=3.0)
        columns[name] = ["t" if flip else value
                         for flip, value in zip(flips, base)]
    columns["age"] = [float(int(value)) for value in
                      cluster_numerical(rng, clusters, 21, 87, noise=0.12)]
    columns["fvc"] = [round(value, 1) for value in
                      cluster_numerical(rng, clusters, 1.4, 6.3, noise=0.12)]
    columns["fev1"] = [round(value, 1) for value in
                       cluster_numerical(rng, clusters, 0.9, 5.0, noise=0.12)]
    return Table(columns)


_LINES = [(0, 1, 2), (3, 4, 5), (5, 6, 7), (0, 3, 5), (1, 4, 6), (2, 5, 7),
          (0, 4, 7), (2, 4, 5)]


def make_tictactoe(n_rows: int = 958, seed: int = 0) -> Table:
    """Tic-tac-toe endgames: eight board squares over ``{x, o, b}`` plus
    a two-valued outcome — five distinct values in the whole table, all
    columns categorical, matching the paper's smallest-domain dataset."""
    rng = np.random.default_rng(seed)
    boards = rng.choice(["x", "o", "b"], size=(n_rows, 8),
                        p=[0.45, 0.35, 0.2])
    outcomes = []
    for board in boards:
        x_wins = any(all(board[position] == "x" for position in line)
                     for line in _LINES)
        outcomes.append("positive" if x_wins else "negative")
    columns = {f"square_{index + 1}": list(boards[:, index])
               for index in range(8)}
    columns["outcome"] = outcomes
    return Table(columns)
