"""CSV input/output for :class:`~repro.data.Table`.

Empty fields round-trip as the missing sentinel.  Column kinds are
inferred on load (a column is numerical iff every non-empty field parses
as a float) unless explicitly provided.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .table import MISSING, Table

__all__ = ["read_csv", "write_csv"]


def _parse_cell(text: str):
    if text == "":
        return MISSING
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(path: str | Path, kinds: dict[str, str] | None = None) -> Table:
    """Load a CSV file (with header) into a :class:`Table`.

    Parameters
    ----------
    kinds:
        Optional explicit column kinds; inferred otherwise.  A column
        declared categorical keeps its raw strings even if they look
        numeric.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        raw_columns: dict[str, list] = {name: [] for name in header}
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(f"{path}:{line_number}: expected "
                                 f"{len(header)} fields, got {len(row)}")
            for name, text in zip(header, row):
                raw_columns[name].append(text)

    kinds = kinds or {}
    columns: dict[str, list] = {}
    for name, texts in raw_columns.items():
        declared = kinds.get(name)
        if declared == "categorical":
            columns[name] = [MISSING if text == "" else text for text in texts]
            continue
        parsed = [_parse_cell(text) for text in texts]
        all_numeric = all(value is MISSING or isinstance(value, float)
                          for value in parsed)
        if declared == "numerical":
            if not all_numeric:
                raise ValueError(f"column {name!r} declared numerical but "
                                 "contains non-numeric values")
            columns[name] = parsed
        elif all_numeric:
            columns[name] = parsed
        else:
            columns[name] = [MISSING if text == "" else text for text in texts]
    return Table(columns, kinds=kinds or None)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a :class:`Table` to CSV; missing cells become empty fields."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in range(table.n_rows):
            record = []
            for name in table.column_names:
                value = table.get(row, name)
                if value is MISSING:
                    record.append("")
                elif table.is_numerical(name):
                    record.append(repr(value))
                else:
                    record.append(str(value))
            writer.writerow(record)
