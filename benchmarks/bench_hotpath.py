"""Hot-path benchmark: message-passing plan cache + vectorized training.

Runs GRIMP three times on the same corrupted dataset:

* ``legacy``  — plan disabled, float64: every ``sparse_matmul`` converts
  per call, gathers go through fancy indexing with ``np.add.at``
  scatter backward (the pre-plan hot path).
* ``plan64``  — plan enabled, float64: identical numerics to ``legacy``
  up to gradient summation order, zero conversions per epoch.
* ``plan32``  — plan enabled, float32 (the training default).

A fourth *allocation leg* runs ``plan32`` twice — workspace arena off,
then on (``repro.tensor.arena``) — over enough epochs for the pool's
steady state to dominate, and records the arena contract as metrics:
bit-identical results (``arena.accuracy_delta``/``arena.rmse_delta``
exactly ``0``), the pooled-allocation ratio (``arena.alloc_ratio``,
roughly the epoch count), the off/on wall ratio, and the epoch
speedup of the arena-enabled hot path over ``legacy``.

Emits a machine-readable ``BENCH_hotpath.json`` with per-phase epoch
breakdowns (forward/backward/step), imputation accuracy per run, and
the speedups relative to ``legacy`` — so future PRs have a perf
trajectory to compare against.  A schema-versioned run manifest
(``BENCH_hotpath_manifest.json``) is written next to it; the CI gate
(``scripts/check_bench_regression.py``) ranges over its flat ``metrics``
map.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke    # <30 s
    PYTHONPATH=src python benchmarks/bench_hotpath.py --out path.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.core import GrimpConfig, GrimpImputer
from repro.corruption import inject_mcar
from repro.datasets import load
from repro.metrics import evaluate_imputation
from repro.telemetry import build_manifest, write_manifest
from repro.tensor import arena_enabled, set_arena_enabled

#: (dataset, n_rows, error_rate) per profile; the full profile mirrors
#: the scale of ``bench_figure9_time.py`` runs.  The ``arena`` entry
#: configures the allocation leg: the plan32 variant run twice (arena
#: off/on) over enough epochs that the pool's steady state dominates —
#: the alloc ratio is roughly the epoch count, since the pool only
#: allocates on first-epoch misses.
PROFILES = {
    "full": {"datasets": [("adult", 240), ("flare", 240)],
             "error_rate": 0.2, "epochs": 30, "patience": 30,
             "arena": {"dataset": ("adult", 240), "epochs": 20}},
    "smoke": {"datasets": [("adult", 60)],
              "error_rate": 0.2, "epochs": 4, "patience": 4,
              "arena": {"dataset": ("adult", 60), "epochs": 10}},
}

#: Hot-path variants benchmarked against each other.
VARIANTS = {
    "legacy": {"mp_plan": False, "dtype": "float64"},
    "plan64": {"mp_plan": True, "dtype": "float64"},
    "plan32": {"mp_plan": True, "dtype": "float32"},
}


def run_variant(name: str, dataset: str, n_rows: int, error_rate: float,
                epochs: int, patience: int, seed: int) -> dict:
    """Train one variant and return its timing/accuracy record."""
    clean = load(dataset, n_rows=n_rows, seed=seed)
    corruption = inject_mcar(clean, error_rate,
                             np.random.default_rng(seed + 1))
    config = GrimpConfig(epochs=epochs, patience=patience, seed=seed,
                         **VARIANTS[name])
    imputer = GrimpImputer(config)
    imputed = imputer.impute(corruption.dirty)
    score = evaluate_imputation(corruption, imputed)
    timings = imputer.timings_
    epochs_ran = len(imputer.history_)

    def seconds(key: str) -> float:
        entry = timings.get(key, {})
        return float(entry.get("seconds", 0.0))

    train_seconds = seconds("fit/train")
    return {
        "dataset": dataset,
        "n_rows": n_rows,
        "epochs_ran": epochs_ran,
        "train_seconds": train_seconds,
        "epoch_seconds": train_seconds / max(1, epochs_ran),
        "forward_seconds": seconds("fit/train/epoch/forward"),
        "backward_seconds": seconds("fit/train/epoch/backward"),
        "step_seconds": seconds("fit/train/epoch/step"),
        "validate_seconds": seconds("fit/train/epoch/validate"),
        "total_seconds": imputer.train_seconds_,
        "accuracy": score.accuracy,
        "rmse": score.rmse,
        "train_conversions": imputer.train_conversions_,
    }


def run_arena_leg(dataset: str, n_rows: int, error_rate: float,
                  epochs: int, seed: int) -> dict:
    """Run the plan32 variant with the workspace arena off, then on.

    Both runs train on the same corrupted frame with the same seed, so
    the arena's contract (bit-identical results, pooled allocations)
    is measured, not assumed: the leg records the imputed-frame
    equality, the accuracy/rmse deltas (exactly ``0.0`` when the
    contract holds), the per-epoch wall-time ratio, and the pool's
    allocation ratio ``(hits + misses) / misses`` — roughly the epoch
    count, because recurring shapes only miss on the first epoch.
    """
    clean = load(dataset, n_rows=n_rows, seed=seed)
    corruption = inject_mcar(clean, error_rate,
                             np.random.default_rng(seed + 1))
    previous = arena_enabled()
    records: dict[str, dict] = {}
    frames: dict[str, object] = {}
    histories: dict[str, list] = {}
    try:
        for mode in ("off", "on"):
            set_arena_enabled(mode == "on")
            config = GrimpConfig(epochs=epochs, patience=epochs,
                                 seed=seed, **VARIANTS["plan32"])
            imputer = GrimpImputer(config)
            imputed = imputer.impute(corruption.dirty)
            score = evaluate_imputation(corruption, imputed)
            epochs_ran = max(1, len(imputer.history_))
            train = imputer.timings_.get("fit/train", {})
            record = {
                "epoch_seconds": float(train.get("seconds", 0.0))
                / epochs_ran,
                "epochs_ran": epochs_ran,
                "accuracy": score.accuracy,
                "rmse": score.rmse,
            }
            if imputer.workspace_ is not None:
                record["workspace"] = imputer.workspace_.stats()
            records[mode] = record
            frames[mode] = imputed
            histories[mode] = imputer.history_
    finally:
        set_arena_enabled(previous)

    stats = records["on"].get("workspace", {})
    misses = max(1, stats.get("pool_misses", 0))
    hits = stats.get("pool_hits", 0)

    def delta(key: str) -> float:
        off, on = records["off"][key], records["on"][key]
        if np.isnan(off) and np.isnan(on):
            return 0.0
        return abs(on - off)

    return {
        "dataset": dataset,
        "n_rows": n_rows,
        "epochs": epochs,
        "off": records["off"],
        "on": records["on"],
        "identical": bool(frames["off"].equals(frames["on"])
                          and histories["off"] == histories["on"]),
        "accuracy_delta": delta("accuracy"),
        "rmse_delta": delta("rmse"),
        "on_off_ratio": records["off"]["epoch_seconds"]
        / max(records["on"]["epoch_seconds"], 1e-12),
        "alloc_ratio": (hits + misses) / misses,
        "peak_mb": stats.get("peak_bytes", 0) / 1e6,
    }


def aggregate(records: list[dict]) -> dict:
    """Mean per-variant numbers across datasets."""
    keys = ("train_seconds", "epoch_seconds", "forward_seconds",
            "backward_seconds", "step_seconds", "total_seconds")
    summary = {key: float(np.mean([record[key] for record in records]))
               for key in keys}
    accuracies = [record["accuracy"] for record in records
                  if np.isfinite(record["accuracy"])]
    rmses = [record["rmse"] for record in records
             if np.isfinite(record["rmse"])]
    summary["accuracy"] = float(np.mean(accuracies)) if accuracies \
        else float("nan")
    summary["rmse"] = float(np.mean(rmses)) if rmses else float("nan")
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config that finishes in well under 30 s")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path (default: BENCH_hotpath.json "
                             "in the repository root)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    profile_name = "smoke" if args.smoke else "full"
    profile = PROFILES[profile_name]
    out_path = args.out if args.out is not None else \
        Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

    runs: dict[str, list[dict]] = {name: [] for name in VARIANTS}
    for dataset, n_rows in profile["datasets"]:
        for name in VARIANTS:
            record = run_variant(name, dataset, n_rows,
                                 profile["error_rate"], profile["epochs"],
                                 profile["patience"], args.seed)
            runs[name].append(record)
            print(f"{name:7s} {dataset:12s} "
                  f"epoch={record['epoch_seconds'] * 1e3:8.1f} ms  "
                  f"acc={record['accuracy']:.3f}  "
                  f"rmse={record['rmse']:.4f}")

    arena_config = profile["arena"]
    arena_dataset, arena_rows = arena_config["dataset"]
    arena = run_arena_leg(arena_dataset, arena_rows,
                          profile["error_rate"], arena_config["epochs"],
                          args.seed)
    print(f"arena   {arena_dataset:12s} "
          f"off={arena['off']['epoch_seconds'] * 1e3:7.1f} ms  "
          f"on={arena['on']['epoch_seconds'] * 1e3:7.1f} ms  "
          f"alloc_ratio={arena['alloc_ratio']:.1f}  "
          f"identical={arena['identical']}")

    summaries = {name: aggregate(records)
                 for name, records in runs.items()}
    legacy_epoch = summaries["legacy"]["epoch_seconds"]
    # The arena leg's speedup follows this benchmark's convention:
    # epoch time relative to the legacy variant *on the same dataset*
    # (the leg's own off/on ratio is reported separately — pooling is
    # close to wall-neutral against a warm allocator; see
    # docs/performance.md).
    legacy_same_dataset = next(
        record for record in runs["legacy"]
        if record["dataset"] == arena_dataset)
    arena["speedup_vs_legacy"] = (
        legacy_same_dataset["epoch_seconds"]
        / max(arena["on"]["epoch_seconds"], 1e-12))
    report = {
        "benchmark": "hotpath",
        "profile": profile_name,
        "seed": args.seed,
        "python": platform.python_version(),
        "runs": {name: {"per_dataset": records,
                        "summary": summaries[name]}
                 for name, records in runs.items()},
        "speedup": {
            name: legacy_epoch / summaries[name]["epoch_seconds"]
            for name in VARIANTS if name != "legacy"
        },
        "accuracy_delta_vs_legacy": {
            name: summaries[name]["accuracy"] - summaries["legacy"]["accuracy"]
            for name in VARIANTS if name != "legacy"
        },
        "rmse_delta_vs_legacy": {
            name: summaries[name]["rmse"] - summaries["legacy"]["rmse"]
            for name in VARIANTS if name != "legacy"
        },
        "train_conversions": {
            name: records[0]["train_conversions"]
            for name, records in runs.items()
        },
        "arena": arena,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    # Machine-portable metrics only (ratios, accuracy, counters) plus
    # informational absolute timings; the CI gate bounds the former and
    # merely records the latter, since wall times vary across runners.
    metrics: dict[str, float] = {}
    for name in VARIANTS:
        if name != "legacy":
            metrics[f"speedup.{name}"] = report["speedup"][name]
        metrics[f"accuracy.{name}"] = summaries[name]["accuracy"]
        metrics[f"epoch_ms.{name}"] = \
            summaries[name]["epoch_seconds"] * 1e3
        conversions = report["train_conversions"][name]
        metrics[f"train_conversions.{name}"] = \
            float(sum(conversions.values()))
    metrics["speedup.arena"] = arena["speedup_vs_legacy"]
    metrics["arena.on_off_ratio"] = arena["on_off_ratio"]
    metrics["arena.alloc_ratio"] = arena["alloc_ratio"]
    metrics["arena.accuracy_delta"] = arena["accuracy_delta"]
    metrics["arena.rmse_delta"] = arena["rmse_delta"]
    metrics["arena.peak_mb"] = arena["peak_mb"]
    metrics["epoch_ms.arena_off"] = arena["off"]["epoch_seconds"] * 1e3
    metrics["epoch_ms.arena_on"] = arena["on"]["epoch_seconds"] * 1e3
    manifest_path = out_path.with_name(out_path.stem + "_manifest.json")
    write_manifest(build_manifest(
        {"kind": "bench", "benchmark": "hotpath",
         "profile": profile_name, "seed": args.seed},
        metrics=metrics), manifest_path)

    print(f"\nepoch time  legacy={legacy_epoch * 1e3:.1f} ms  "
          f"plan64={summaries['plan64']['epoch_seconds'] * 1e3:.1f} ms  "
          f"plan32={summaries['plan32']['epoch_seconds'] * 1e3:.1f} ms")
    print(f"speedup     plan64={report['speedup']['plan64']:.2f}x  "
          f"plan32={report['speedup']['plan32']:.2f}x  "
          f"arena={arena['speedup_vs_legacy']:.2f}x")
    print(f"arena       on/off={arena['on_off_ratio']:.2f}x  "
          f"alloc_ratio={arena['alloc_ratio']:.1f}x  "
          f"accuracy_delta={arena['accuracy_delta']:.3g}  "
          f"rmse_delta={arena['rmse_delta']:.3g}")
    print(f"wrote {out_path}")
    print(f"wrote {manifest_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
