"""LRU cache of compiled message-passing plans for sampled subgraphs.

Full-graph training compiles its :class:`~repro.gnn.MessagePassingPlan`
once per fit; sampled training would naively recompile per *batch*
(CSR casts plus transpose materializations for the backward pass).
This cache keys plans on the subgraph's structural content hash
(:meth:`SampledSubgraph.signature`), so recurring local structure —
guaranteed for every batch under an unbounded fanout, common for hot
shapes under finite fanouts — reuses the compiled operators.

Content keying (not shape keying) is what makes reuse *correct*: a
plan is exactly a function of the local CSR arrays, and two subgraphs
sharing a hash share those arrays byte-for-byte.  Which global nodes
the local ids map to is irrelevant — the feature gather uses
``SampledSubgraph.nodes`` separately.
"""

from __future__ import annotations

from collections import OrderedDict

from ..gnn import MessagePassingPlan
from ..telemetry import counter
from ..tensor import Workspace, arena_enabled
from .sampler import SampledSubgraph

__all__ = ["SubgraphPlanCache"]

_HITS = counter("sampling.plan.hits", "sampled-subgraph plan cache hits")
_MISSES = counter("sampling.plan.misses",
                  "sampled-subgraph plan compilations")


class SubgraphPlanCache:
    """Bounded LRU mapping subgraph signatures to compiled plans.

    Parameters
    ----------
    capacity:
        Maximum retained plans; least-recently-used entries are
        evicted.  Sized for the working set of recurring batch shapes,
        not the whole epoch.
    dtype:
        Dtype handed to :class:`~repro.gnn.MessagePassingPlan` (default:
        engine default).
    arenas:
        Attach a :class:`~repro.tensor.Workspace` (as ``plan.arena``)
        to plans that prove they recur — the arena is created on a
        plan's first cache *hit*, so compile-once subgraph shapes never
        pin a pool of their own and fall back to the caller's shared
        workspace instead.  Defaults to the process-wide arena switch
        (``REPRO_ARENA``).
    """

    def __init__(self, capacity: int = 16, dtype=None,
                 arenas: bool | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.dtype = dtype
        self.arenas = arena_enabled() if arenas is None else bool(arenas)
        self.hits = 0
        self.misses = 0
        self._plans: "OrderedDict[str, MessagePassingPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, subgraph: SampledSubgraph) -> MessagePassingPlan:
        """The compiled plan for ``subgraph``, compiling on miss."""
        key = subgraph.signature()
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            _HITS.inc()
            self._plans.move_to_end(key)
            if self.arenas and getattr(plan, "arena", None) is None:
                # A plan earns a dedicated arena on first reuse;
                # eviction later drops the workspace with its plan, so
                # pooled buffers never outlive the shapes renting them.
                plan.arena = Workspace()
            return plan
        self.misses += 1
        _MISSES.inc()
        plan = MessagePassingPlan(subgraph.adjacencies, dtype=self.dtype)
        self._plans[key] = plan
        if len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
        return plan

    def stats(self) -> dict[str, int]:
        """Hit/miss/size snapshot for telemetry and tests."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._plans)}

    def arena_stats(self) -> dict[str, int]:
        """Summed rent statistics over every cached entry's workspace."""
        totals = {"bytes_requested": 0, "pool_hits": 0,
                  "pool_misses": 0, "peak_bytes": 0}
        for plan in self._plans.values():
            workspace = getattr(plan, "arena", None)
            if workspace is None:
                continue
            stats = workspace.stats()
            totals["bytes_requested"] += stats["bytes_requested"]
            totals["pool_hits"] += stats["pool_hits"]
            totals["pool_misses"] += stats["pool_misses"]
            totals["peak_bytes"] += stats["peak_bytes"]
        return totals
