"""Multiple imputation: pool several stochastic imputation runs.

The classical multiple-imputation recipe behind MICE [48]: run the
imputer *m* times with different seeds, then pool — majority vote for
categorical cells, mean for numerical cells (Rubin's rules for point
estimates).  Per-cell agreement across runs doubles as an uncertainty
signal, complementing :meth:`GrimpImputer.impute_with_scores`.

Works with any imputer whose constructor takes a ``seed`` (the
experiment registry's factory provides exactly that).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..data import MISSING, Table
from ..imputation import Imputer

__all__ = ["MultipleImputation", "multiple_impute"]


@dataclass
class MultipleImputation:
    """Pooled result of ``m`` imputation runs.

    Attributes
    ----------
    pooled:
        The consensus table (vote/mean over runs).
    agreement:
        ``(row, column) -> fraction of runs agreeing with the pooled
        value`` for categorical cells, and
        ``1 / (1 + std across runs)`` for numerical cells — higher is
        more certain, always in ``(0, 1]``.
    n_runs:
        Number of pooled runs.
    """

    pooled: Table
    agreement: dict[tuple[int, str], float] = field(default_factory=dict)
    n_runs: int = 0

    def low_confidence_cells(self, threshold: float = 0.5
                             ) -> list[tuple[int, str]]:
        """Cells whose agreement falls below ``threshold``."""
        return sorted(cell for cell, value in self.agreement.items()
                      if value < threshold)


def multiple_impute(dirty: Table,
                    imputer_factory: Callable[[int], Imputer],
                    m: int = 5, seed: int = 0) -> MultipleImputation:
    """Run ``m`` imputations with distinct seeds and pool them.

    Parameters
    ----------
    imputer_factory:
        ``seed -> Imputer``; e.g.
        ``lambda s: make_imputer("grimp-ft", seed=s)``.
    m:
        Number of runs (classical multiple imputation uses 3-10).
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    missing = dirty.missing_cells()
    runs = [imputer_factory(seed + offset).impute(dirty)
            for offset in range(m)]

    pooled = dirty.copy()
    agreement: dict[tuple[int, str], float] = {}
    for row, column in missing:
        values = [run.get(row, column) for run in runs]
        observed = [value for value in values if value is not MISSING]
        if not observed:
            continue
        if dirty.is_categorical(column):
            counts = Counter(observed)
            best_count = max(counts.values())
            winner = sorted((value for value, count in counts.items()
                             if count == best_count), key=str)[0]
            pooled.set(row, column, winner)
            agreement[(row, column)] = best_count / m
        else:
            data = np.array(observed, dtype=float)
            pooled.set(row, column, float(data.mean()))
            agreement[(row, column)] = 1.0 / (1.0 + float(data.std()))
    return MultipleImputation(pooled=pooled, agreement=agreement, n_runs=m)
