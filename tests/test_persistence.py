"""Tests for experiment-result persistence."""

import json

import numpy as np
import pytest

from repro.experiments import save_results, load_results, run_grid
from repro.experiments.runner import ExperimentResult


def make_result(accuracy=0.5, rmse=float("nan")):
    return ExperimentResult(dataset="flare", algorithm="mode",
                            error_rate=0.2, seed=0, accuracy=accuracy,
                            rmse=rmse, fill_rate=1.0, seconds=0.1,
                            n_test_cells=10)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        # NaN breaks dataclass equality; the NaN path is covered by
        # test_nan_rmse_survives.
        results = [make_result(0.5, rmse=0.5), make_result(0.7, rmse=1.25)]
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert loaded == results

    def test_nan_rmse_survives(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([make_result(rmse=float("nan"))], path)
        loaded = load_results(path)
        assert np.isnan(loaded[0].rmse)

    def test_real_grid_roundtrip(self, tmp_path):
        results = run_grid(["flare"], ["mode"], error_rates=(0.2,),
                           n_rows=30)
        path = tmp_path / "grid.json"
        save_results(results, path)
        assert load_results(path) == results

    def test_loaded_results_feed_reports(self, tmp_path):
        from repro.experiments import format_accuracy_matrix
        results = [make_result(0.5)]
        path = tmp_path / "results.json"
        save_results(results, path)
        text = format_accuracy_matrix(load_results(path))
        assert "mode" in text


class TestValidation:
    def test_rejects_non_results_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_results(path)

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 99, "results": []}))
        with pytest.raises(ValueError):
            load_results(path)

    def test_rejects_malformed_rows(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 1,
                                    "results": [{"dataset": "x"}]}))
        with pytest.raises(ValueError):
            load_results(path)


class TestFormatNamespacing:
    def test_saved_files_carry_format_marker(self, tmp_path):
        from repro.experiments.persistence import RESULTS_FORMAT
        path = tmp_path / "results.json"
        save_results([make_result(0.5, rmse=0.5)], path)
        payload = json.loads(path.read_text())
        assert payload["format"] == RESULTS_FORMAT

    def test_legacy_files_without_marker_still_load(self, tmp_path):
        path = tmp_path / "legacy.json"
        save_results([make_result(0.5, rmse=0.5)], path)
        payload = json.loads(path.read_text())
        del payload["format"]
        path.write_text(json.dumps(payload))
        assert len(load_results(path)) == 1

    def test_checkpoint_manifest_names_the_right_loader(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"format": "repro-grimp-checkpoint",
                                    "format_version": 1}))
        with pytest.raises(ValueError, match="load_checkpoint"):
            load_results(path)

    def test_foreign_format_marker_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"format": "somebody-elses-format",
                                    "format_version": 1, "results": []}))
        with pytest.raises(ValueError, match="format"):
            load_results(path)

    def test_version_mismatch_message_names_versions(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({
            "format": "repro-experiment-results",
            "format_version": 99, "results": []}))
        with pytest.raises(ValueError, match="version 99"):
            load_results(path)
