"""Building blocks for the synthetic dataset generators.

The paper evaluates on eight UCI datasets plus IMDB and the Tax
benchmark.  Those files cannot be downloaded in this offline
environment, so each dataset is replaced by a deterministic synthetic
generator that matches the published Table 1 statistics (rows, number of
categorical/numerical columns, distinct-value counts, FD counts) and the
paper's qualitative profile (frequency skew, inter-attribute
correlation).  Section 5 of the paper argues that imputation difficulty
is governed exactly by these value-frequency statistics, so matching
them preserves the experimental landscape.

The core generative model is a *latent-cluster* table: every row draws a
hidden cluster id from a Zipf-like distribution; each categorical column
maps clusters to preferred values (emitted with probability
``fidelity``, otherwise a background value is drawn); each numerical
column is a cluster-dependent Gaussian.  Rows in the same cluster are
therefore similar across all attributes — the tuple-similarity signal
GNN-based imputers exploit (Figure 1 of the paper) — while marginals
stay realistically skewed.
"""

from __future__ import annotations

import numpy as np

from ..data import Table

__all__ = [
    "zipf_probabilities",
    "sample_clusters",
    "cluster_categorical",
    "cluster_numerical",
    "derived_column",
    "unique_strings",
]


def zipf_probabilities(k: int, alpha: float) -> np.ndarray:
    """Normalized Zipf(alpha) probabilities over ``k`` ranks.

    ``alpha = 0`` is uniform; larger values concentrate mass on the
    first ranks (the "few very frequent values" regime of Flare and
    Thoracic in the paper's §5).
    """
    if k < 1:
        raise ValueError("k must be positive")
    ranks = np.arange(1, k + 1, dtype=float)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def sample_clusters(rng: np.random.Generator, n_rows: int, n_clusters: int,
                    alpha: float = 0.8) -> np.ndarray:
    """Sample one latent cluster id per row from a Zipf prior."""
    return rng.choice(n_clusters, size=n_rows,
                      p=zipf_probabilities(n_clusters, alpha))


def cluster_categorical(rng: np.random.Generator, clusters: np.ndarray,
                        values: list, fidelity: float = 0.85,
                        background_alpha: float = 1.0) -> list:
    """Generate a categorical column correlated with the latent clusters.

    Each cluster is assigned a preferred value; a row emits its cluster's
    preference with probability ``fidelity`` and otherwise a Zipfian
    background draw.  Lower fidelity weakens the learnable signal.
    """
    if not values:
        raise ValueError("values must be non-empty")
    n_clusters = int(clusters.max()) + 1 if clusters.size else 0
    preferred = rng.choice(len(values), size=max(n_clusters, 1))
    background = zipf_probabilities(len(values), background_alpha)
    out = []
    for cluster in clusters:
        if rng.random() < fidelity:
            out.append(values[preferred[cluster]])
        else:
            out.append(values[rng.choice(len(values), p=background)])
    return out


def cluster_numerical(rng: np.random.Generator, clusters: np.ndarray,
                      low: float, high: float, noise: float = 0.1,
                      decimals: int = 2) -> list:
    """Generate a numerical column whose mean depends on the cluster.

    Cluster centers are spread over ``[low, high]``; per-row noise is a
    Gaussian with std ``noise * (high - low)``.  Values are rounded to
    ``decimals`` so domains stay realistically finite.
    """
    n_clusters = int(clusters.max()) + 1 if clusters.size else 1
    centers = rng.uniform(low, high, size=n_clusters)
    spread = noise * (high - low)
    raw = centers[clusters] + rng.normal(0.0, spread, size=clusters.shape)
    clipped = np.clip(raw, low, high)
    return [round(float(value), decimals) for value in clipped]


def derived_column(source: list, mapping: dict) -> list:
    """Apply an exact value mapping — plants a functional dependency
    ``source -> derived`` that holds by construction."""
    missing = {value for value in source if value not in mapping}
    if missing:
        raise KeyError(f"mapping lacks entries for {sorted(map(str, missing))[:5]}")
    return [mapping[value] for value in source]


def unique_strings(rng: np.random.Generator, n: int, prefix: str,
                   duplication: float = 0.0) -> list:
    """Generate ``n`` mostly-unique identifier strings (IMDB-style titles).

    ``duplication`` is the fraction of rows that reuse an earlier value,
    giving the long-but-not-degenerate tail of the IMDB dataset.
    """
    if not 0.0 <= duplication < 1.0:
        raise ValueError("duplication must be in [0, 1)")
    out: list[str] = []
    for index in range(n):
        if out and rng.random() < duplication:
            out.append(out[int(rng.integers(0, len(out)))])
        else:
            out.append(f"{prefix}_{index:05d}")
    return out
