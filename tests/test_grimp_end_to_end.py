"""End-to-end tests for the GRIMP imputer on small structured tables."""

import numpy as np
import pytest

from repro.data import MISSING, Table
from repro.corruption import inject_mcar
from repro.core import GrimpConfig, GrimpImputer
from repro.fd import FunctionalDependency
from repro.imputation import mode_value


def structured_table(n_rows=60, seed=0):
    """City determines country exactly; population depends on city."""
    rng = np.random.default_rng(seed)
    cities = ["paris", "rome", "berlin"]
    country_of = {"paris": "france", "rome": "italy", "berlin": "germany"}
    population_of = {"paris": 2.1, "rome": 2.8, "berlin": 3.6}
    chosen = [cities[index] for index in rng.integers(0, 3, n_rows)]
    return Table({
        "city": chosen,
        "country": [country_of[city] for city in chosen],
        "population": [population_of[city] + rng.normal(0, 0.05)
                       for city in chosen],
    })


def accuracy_on(cells, imputed, clean):
    correct = sum(1 for row, column in cells
                  if imputed.get(row, column) == clean.get(row, column))
    return correct / len(cells)


FAST = GrimpConfig(feature_dim=12, gnn_dim=16, merge_dim=16, epochs=40,
                   patience=6, lr=1e-2, seed=0)


class TestGrimpEndToEnd:
    def test_fills_every_missing_cell(self):
        corruption = inject_mcar(structured_table(), 0.2,
                                 np.random.default_rng(1))
        imputed = GrimpImputer(FAST).impute(corruption.dirty)
        assert imputed.missing_fraction() == 0.0

    def test_non_missing_cells_untouched(self):
        corruption = inject_mcar(structured_table(), 0.2,
                                 np.random.default_rng(1))
        imputed = GrimpImputer(FAST).impute(corruption.dirty)
        injected = set(corruption.injected)
        for column in corruption.dirty.column_names:
            for row in range(corruption.dirty.n_rows):
                if (row, column) not in injected:
                    assert imputed.get(row, column) == \
                        corruption.dirty.get(row, column)

    def test_beats_mode_imputation_on_structured_data(self):
        table = structured_table(n_rows=80)
        corruption = inject_mcar(table, 0.2, np.random.default_rng(2),
                                 columns=["country"])
        imputed = GrimpImputer(FAST).impute(corruption.dirty)
        grimp_accuracy = accuracy_on(corruption.injected, imputed,
                                     corruption.clean)
        mode = mode_value(corruption.dirty, "country")
        mode_accuracy = sum(
            1 for row, column in corruption.injected
            if corruption.clean.get(row, column) == mode) / \
            len(corruption.injected)
        assert grimp_accuracy > mode_accuracy
        assert grimp_accuracy >= 0.8  # city fully determines country

    def test_numeric_imputation_in_reasonable_range(self):
        table = structured_table(n_rows=80)
        corruption = inject_mcar(table, 0.2, np.random.default_rng(3),
                                 columns=["population"])
        imputed = GrimpImputer(FAST).impute(corruption.dirty)
        for row, column in corruption.injected:
            value = imputed.get(row, column)
            assert 1.0 < value < 5.0

    def test_history_and_timing_recorded(self):
        corruption = inject_mcar(structured_table(40), 0.1,
                                 np.random.default_rng(0))
        imputer = GrimpImputer(FAST)
        imputer.impute(corruption.dirty)
        assert imputer.history_
        assert {"epoch", "train_loss", "validation_loss"} <= \
            set(imputer.history_[0])
        assert imputer.train_seconds_ > 0

    def test_early_stopping_bounds_epochs(self):
        config = GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                             epochs=200, patience=2, lr=1e-2, seed=0)
        corruption = inject_mcar(structured_table(30), 0.1,
                                 np.random.default_rng(0))
        imputer = GrimpImputer(config)
        imputer.impute(corruption.dirty)
        assert len(imputer.history_) < 200

    def test_linear_task_variant_runs(self):
        config = GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                             epochs=20, task_kind="linear", seed=0)
        corruption = inject_mcar(structured_table(40), 0.2,
                                 np.random.default_rng(1))
        imputed = GrimpImputer(config).impute(corruption.dirty)
        assert imputed.missing_fraction() == 0.0

    def test_embdi_feature_strategy_runs(self):
        config = GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                             epochs=15, feature_strategy="embdi", seed=0,
                             embdi_kwargs={"epochs": 1, "walks_per_node": 2})
        corruption = inject_mcar(structured_table(30), 0.2,
                                 np.random.default_rng(1))
        imputed = GrimpImputer(config).impute(corruption.dirty)
        assert imputed.missing_fraction() == 0.0

    def test_fd_strategy_accepts_fds(self):
        fds = (FunctionalDependency(("city",), "country"),)
        config = GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                             epochs=20, k_strategy="weak_diagonal_fd",
                             fds=fds, seed=0)
        corruption = inject_mcar(structured_table(40), 0.2,
                                 np.random.default_rng(1))
        imputed = GrimpImputer(config).impute(corruption.dirty)
        assert imputed.missing_fraction() == 0.0

    def test_categorical_values_from_domain(self):
        table = structured_table(60)
        corruption = inject_mcar(table, 0.3, np.random.default_rng(4))
        imputed = GrimpImputer(FAST).impute(corruption.dirty)
        observed_domain = set(corruption.dirty.domain("city"))
        for row, column in corruption.injected:
            if column == "city":
                assert imputed.get(row, column) in observed_domain

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(ValueError):
            GrimpImputer(GrimpConfig(), epochs=5)

    def test_keyword_overrides(self):
        imputer = GrimpImputer(epochs=7, task_kind="linear")
        assert imputer.config.epochs == 7
        assert imputer.name == "grimp-ft-l"

    def test_focal_loss_variant_runs(self):
        config = GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                             epochs=15, categorical_loss="focal", seed=0)
        corruption = inject_mcar(structured_table(30), 0.2,
                                 np.random.default_rng(1))
        imputed = GrimpImputer(config).impute(corruption.dirty)
        assert imputed.missing_fraction() == 0.0

    def test_handles_row_with_multiple_missing(self):
        table = Table({
            "a": ["x", "y", MISSING, "x"] * 5,
            "b": ["1", MISSING, MISSING, "1"] * 5,
            "c": ["p", "q", "p", MISSING] * 5,
        })
        config = GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                             epochs=10, seed=0)
        imputed = GrimpImputer(config).impute(table)
        assert imputed.missing_fraction() == 0.0
