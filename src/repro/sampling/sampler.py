"""Fanout-based neighborhood sampling over a :class:`FrozenGraph`.

One :meth:`NeighborSampler.sample` call expands a batch's seed nodes
into the compact subgraph that message passing needs, hop by hop.  Per
hop, per edge type, every frontier node's neighborhood is produced by
vectorized numpy calls — the finite-fanout path is ONE batched
``np.searchsorted`` over the frozen search keys for the entire
frontier (the walk-kernel idiom), and the exact path is one
``repeat``/``cumsum`` slice gather of whole CSR rows.

The subgraph is *square*: every node that appears anywhere in the
expansion gets a local id, and each edge type becomes an ``(s, s)``
CSR operator over the local ids.  Rows are materialized once per node
(the same sampled row serves every GNN layer, which is exactly the
full-graph contract where one adjacency is shared by all layers);
nodes discovered on the last hop contribute features only and keep
empty rows.  With an unbounded fanout the materialized rows are the
full-graph rows verbatim — same neighbors, same normalized weights —
so a minibatch forward over the subgraph reproduces full-graph
outputs (and therefore gradients) for the batch exactly.

With a finite fanout ``k``, each row is estimated by ``k`` draws
*with replacement* from the row's normalized weight distribution,
each contributing weight ``1/k`` (duplicates merge by summation) — an
unbiased estimator of the full row aggregation whose memory cost is
bounded by ``k`` per node per edge type instead of the node's degree.
"""

from __future__ import annotations

import hashlib

import numpy as np
from scipy import sparse

from .frozen import FrozenGraph

__all__ = ["NeighborSampler", "SampledSubgraph"]


class SampledSubgraph:
    """A compact relabeled subgraph produced by one sampler call.

    ``nodes`` holds the sorted global node ids; local id ``i`` is
    global id ``nodes[i]``.  ``adjacencies`` maps each edge type to an
    ``(s, s)`` CSR over local ids, directly consumable by
    :class:`~repro.gnn.HeteroGNN` (and compilable into a
    :class:`~repro.gnn.MessagePassingPlan`).
    """

    __slots__ = ("nodes", "adjacencies", "_signature")

    def __init__(self, nodes: np.ndarray,
                 adjacencies: dict[str, sparse.csr_matrix]):
        self.nodes = nodes
        self.adjacencies = adjacencies
        self._signature: str | None = None

    @property
    def n_local(self) -> int:
        """Number of local nodes (``s``)."""
        return int(self.nodes.shape[0])

    def local_indices(self, indices: np.ndarray,
                      null_index: int) -> np.ndarray:
        """Map a global node-index matrix into local ids.

        Entries equal to ``null_index`` (the trailing zero row of the
        full graph) map to ``n_local`` — the zero row
        :meth:`GrimpModel.node_representations` appends to the local
        representations.  Every other entry must be a sampled seed.
        """
        flat = np.asarray(indices, dtype=np.int64)
        out = np.full(flat.shape, self.n_local, dtype=np.int64)
        real = flat != null_index
        positions = np.searchsorted(self.nodes, flat[real])
        if positions.size and (np.any(positions >= self.nodes.shape[0])
                               or np.any(self.nodes[np.minimum(
                                   positions, self.nodes.shape[0] - 1)]
                                   != flat[real])):
            raise ValueError("index matrix references nodes outside the "
                             "sampled subgraph")
        out[real] = positions
        return out

    def signature(self) -> str:
        """Content hash of the local structure (plan-cache key).

        Two subgraphs with identical local CSR structure compile to
        identical planned operators regardless of which global nodes
        they cover, so the hash deliberately excludes ``nodes``.
        """
        if self._signature is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.int64(self.n_local).tobytes())
            for edge_type, matrix in self.adjacencies.items():
                digest.update(edge_type.encode("utf-8"))
                digest.update(matrix.indptr.tobytes())
                digest.update(matrix.indices.tobytes())
                digest.update(matrix.data.tobytes())
            self._signature = digest.hexdigest()
        return self._signature

    def __repr__(self) -> str:
        return (f"SampledSubgraph(nodes={self.n_local}, "
                f"edge_types={len(self.adjacencies)})")


class NeighborSampler:
    """Expand seed nodes into bounded sampled neighborhoods.

    Parameters
    ----------
    frozen:
        The :class:`FrozenGraph` snapshot to sample from.
    fanout:
        Neighbors to draw per node per edge type per hop.  ``0`` (or
        ``None``) means *unbounded*: every row is taken exactly, with
        its full-graph normalized weights — minibatched but unsampled,
        which is what the golden-parity tests and exact batched
        inference run.
    """

    def __init__(self, frozen: FrozenGraph, fanout: int | None = None):
        fanout = 0 if fanout is None else int(fanout)
        if fanout < 0:
            raise ValueError(f"fanout must be >= 0, got {fanout}")
        self.frozen = frozen
        self.fanout = fanout

    @property
    def exact(self) -> bool:
        """Whether rows are materialized exactly (unbounded fanout)."""
        return self.fanout == 0

    def sample(self, seeds: np.ndarray, n_hops: int,
               rng: np.random.Generator | None = None) -> SampledSubgraph:
        """Sample the ``n_hops``-deep subgraph rooted at ``seeds``.

        ``rng`` supplies the draws for finite fanouts (required then,
        unused for exact expansion).  The draw order is fixed — hops
        outer, edge types in frozen order — so a given generator state
        always yields the same subgraph.
        """
        if not self.exact and rng is None:
            raise ValueError("finite-fanout sampling needs an rng")
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if seeds.size == 0:
            raise ValueError("cannot sample a subgraph from zero seeds")
        if seeds[0] < 0 or seeds[-1] >= self.frozen.n_nodes:
            raise ValueError("seed node ids out of range")
        blocks: dict[str, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] \
            = {edge_type: [] for edge_type in self.frozen.edge_types}
        known = seeds
        frontier = seeds
        for _hop in range(n_hops):
            if frontier.size == 0:
                break
            discovered: list[np.ndarray] = []
            for edge_type in self.frozen.edge_types:
                rows, cols, vals = self._rows(edge_type, frontier, rng)
                if rows.size:
                    blocks[edge_type].append((rows, cols, vals))
                    discovered.append(cols)
            if not discovered:
                break
            neighbors = np.unique(np.concatenate(discovered))
            frontier = np.setdiff1d(neighbors, known, assume_unique=True)
            known = np.union1d(known, frontier)
        nodes = known  # sorted by construction
        s = nodes.shape[0]
        adjacencies: dict[str, sparse.csr_matrix] = {}
        for edge_type in self.frozen.edge_types:
            parts = blocks[edge_type]
            if parts:
                rows = np.concatenate([part[0] for part in parts])
                cols = np.concatenate([part[1] for part in parts])
                vals = np.concatenate([part[2] for part in parts])
                local = sparse.coo_matrix(
                    (vals, (np.searchsorted(nodes, rows),
                            np.searchsorted(nodes, cols))),
                    shape=(s, s)).tocsr()
                local.sum_duplicates()
            else:
                local = sparse.csr_matrix((s, s),
                                          dtype=self._weights(edge_type).dtype)
            adjacencies[edge_type] = local
        return SampledSubgraph(nodes, adjacencies)

    # ------------------------------------------------------------------
    def _weights(self, edge_type: str) -> np.ndarray:
        return self.frozen.csr[edge_type][2]

    def _rows(self, edge_type: str, frontier: np.ndarray,
              rng: np.random.Generator | None
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialize (exactly or by sampling) the frontier's rows.

        Returns parallel ``(row, col, weight)`` arrays in global ids.
        """
        indptr, indices, weights, keys = self.frozen.csr[edge_type]
        lo = indptr[frontier]
        hi = indptr[frontier + 1]
        if self.exact:
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty, np.empty(0, dtype=weights.dtype)
            bases = np.cumsum(counts) - counts
            offsets = np.arange(total, dtype=np.int64) \
                - np.repeat(bases, counts)
            flat = np.repeat(lo, counts) + offsets
            return (np.repeat(frontier, counts), indices[flat],
                    weights[flat])
        active = hi > lo
        owners = frontier[active]
        if owners.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=weights.dtype)
        k = self.fanout
        draws = rng.random((owners.shape[0], k))
        positions = np.searchsorted(keys,
                                    (owners[:, None] + draws).reshape(-1),
                                    side="right")
        # Clamp to each owner's segment tail: a draw within one ulp of
        # 1.0 may round past the final key (the walk kernel's clamp).
        positions = np.minimum(positions, np.repeat(hi[active], k) - 1)
        vals = np.full(owners.shape[0] * k, 1.0 / k, dtype=weights.dtype)
        return np.repeat(owners, k), indices[positions], vals
