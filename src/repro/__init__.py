"""GRIMP reproduction: relational data imputation with graph neural networks.

This package reproduces the system described in "Relational Data
Imputation with Graph Neural Networks" (Cappuzzo, Thirumuruganathan,
Papotti; EDBT 2024), including every substrate it depends on — an
autograd engine, GNN layers, embedding learners, dataset generators,
error injection, functional dependencies, and seven baseline imputers.

Public entry points live in the subpackages; see ``README.md`` for a
quickstart.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
