"""Stdlib-only HTTP server for online imputation.

Endpoints
---------
``POST /impute``
    Body ``{"row": {...}}`` or ``{"rows": [{...}, ...]}``; missing cells
    are ``null`` (or absent).  Response mirrors the request shape with
    every missing cell filled.  Under load shedding the server answers
    ``429`` with a ``Retry-After`` header instead of queueing without
    bound.
``GET /healthz``
    **Readiness**: 503 until the engine is pinned and (in multi-process
    mode) every inference worker has warmed — attached the shared
    weights and served a probe batch.  ``GET /healthz?live=1`` is the
    **liveness** variant: 200 as soon as the process accepts
    connections, warming or not, so a supervisor does not kill a
    server that is merely still pre-forking.
``GET /metrics``
    Live counters: request/error/rejection totals, the fixed-bucket
    latency histogram with p50/p95/p99, the batch-size histogram, the
    engine's span timings, a ``dispatch`` section (queue depth,
    per-worker batch counters, restarts) in multi-process mode, and a
    ``telemetry`` section with span aggregates and the global counter
    registry (see :mod:`repro.telemetry`).

Execution tiers, selected by the ``workers`` parameter:

* ``workers=0`` (default) — the PR-2 in-process tier: one
  ``ThreadingHTTPServer`` whose handlers funnel rows through a single
  micro-batcher into the in-process engine.  Simple, but numpy under
  threads is GIL-bound: one core regardless of the box.
* ``workers>=1`` — the multi-process tier: handlers hand whole
  requests to the :class:`~repro.serve.dispatch.Dispatcher`, which
  load-balances over N pre-fork inference workers sharing one
  read-only copy of the model through shared memory.  Each worker
  micro-batches independently; admission control bounds the in-flight
  queue.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..telemetry import TENSOR_OPS, Tracer, get_registry
from .batcher import MicroBatcher
from .dispatch import Dispatcher, DispatcherStopped, QueueFull, \
    WorkerCrashed
from .engine import InferenceEngine
from .metrics import ServingMetrics

__all__ = ["ImputationServer"]

#: Largest accepted request body (bytes); guards the worker against
#: accidental multi-hundred-MB posts.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to an :class:`ImputationServer` instance."""

    protocol_version = "HTTP/1.1"
    #: Set by the owning :class:`ImputationServer`.
    serve_app: "ImputationServer"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.serve_app.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        app = self.serve_app
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._handle_healthz(app, parse_qs(parsed.query))
        elif parsed.path == "/metrics":
            payload = app.metrics.snapshot()
            payload["engine"] = app.engine.stats()
            if app.dispatcher is not None:
                payload["dispatch"] = app.dispatcher.stats()
            payload["batching"] = {
                "max_batch_size": app.max_batch_size,
                "max_delay_ms": app.max_delay_ms,
            }
            payload["telemetry"] = {
                "spans": app.tracer.aggregate(),
                "counters": app.registry.snapshot(),
                "tensor_ops": TENSOR_OPS.snapshot(),
            }
            self._send_json(200, payload)
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def _handle_healthz(self, app: "ImputationServer",
                        query: dict) -> None:
        live_only = query.get("live", ["0"])[0] not in ("0", "", "false")
        payload = {
            "uptime_seconds": time.monotonic() - app.started_at,
            "pinned": app.engine.is_pinned,
            "columns": app.engine.columns,
        }
        if app.dispatcher is not None:
            payload["workers"] = app.dispatcher.n_workers
            payload["workers_ready"] = app.dispatcher.ready_count
        if live_only:
            # Liveness: the process is up and answering; warming is not
            # a reason to be restarted.
            payload["status"] = "alive"
            self._send_json(200, payload)
        elif app.is_ready:
            payload["status"] = "ok"
            self._send_json(200, payload)
        else:
            payload["status"] = "warming"
            self._send_json(503, payload, headers={"Retry-After": "1"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/impute":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        app = self.serve_app
        started = time.monotonic()
        with app.tracer.span("http.impute") as request_span:
            self._handle_impute(app, started, request_span)

    def _parse_rows(self) -> tuple[list[dict], bool]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("empty request body")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body over {MAX_BODY_BYTES} "
                             f"bytes")
        payload = json.loads(self.rfile.read(length))
        singleton = "row" in payload if isinstance(payload, dict) \
            else False
        if singleton:
            rows = [payload["row"]]
        elif isinstance(payload, dict) and "rows" in payload:
            rows = payload["rows"]
        else:
            raise ValueError('body must be {"row": {...}} or '
                             '{"rows": [...]}')
        if not isinstance(rows, list) or not rows:
            raise ValueError('"rows" must be a non-empty list')
        return rows, singleton

    def _handle_impute(self, app: "ImputationServer", started: float,
                       request_span) -> None:
        try:
            rows, singleton = self._parse_rows()
            imputed = app.impute_rows(rows)
        except (ValueError, KeyError, TypeError,
                json.JSONDecodeError) as error:
            app.metrics.record_request(time.monotonic() - started, ok=False)
            request_span.set(outcome="bad_request")
            self._send_json(400, {"error": str(error)})
            return
        except QueueFull as error:
            app.metrics.record_rejected()
            request_span.set(outcome="shed")
            self._send_json(
                429, {"error": str(error),
                      "retry_after_seconds": error.retry_after},
                headers={"Retry-After":
                         str(max(1, int(round(error.retry_after))))})
            return
        except TimeoutError:
            app.metrics.record_request(time.monotonic() - started, ok=False)
            request_span.set(outcome="timeout")
            self._send_json(503, {"error": "imputation timed out"})
            return
        except (WorkerCrashed, DispatcherStopped) as error:
            app.metrics.record_request(time.monotonic() - started, ok=False)
            request_span.set(outcome="unavailable")
            self._send_json(503, {"error": str(error)},
                            headers={"Retry-After": "1"})
            return
        latency = time.monotonic() - started
        app.metrics.record_request(latency, n_rows=len(imputed))
        request_span.set(outcome="ok", rows=len(imputed))
        body: dict = {"latency_ms": latency * 1e3}
        if singleton:
            body["row"] = imputed[0]
        else:
            body["rows"] = imputed
        self._send_json(200, body)


class ImputationServer:
    """HTTP façade over an :class:`InferenceEngine`.

    Parameters
    ----------
    engine:
        The inference engine (its representations are pinned on server
        construction if they were not already).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    max_batch_size, max_delay_ms:
        Micro-batching policy (see :class:`MicroBatcher`) — applied
        in-process at ``workers=0``, per worker otherwise.
    workers:
        ``0`` serves in-process (threaded tier); ``>= 1`` pre-forks
        that many inference worker processes behind a dispatch queue.
    max_queue_depth:
        Admission bound for the multi-process tier: requests beyond
        this many in flight are answered ``429 Retry-After``.
    request_timeout:
        Per-request wait bound, seconds.
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 8080, max_batch_size: int = 32,
                 max_delay_ms: float = 5.0, workers: int = 0,
                 max_queue_depth: int = 64,
                 request_timeout: float = 30.0, verbose: bool = False):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.engine = engine
        engine.pin()
        self.metrics = ServingMetrics()
        # Aggregate-only tracer shared by the HTTP handlers, the
        # micro-batcher worker, and the dispatch layer: constant
        # memory, exact per-path totals, surfaced under the
        # ``telemetry`` key of ``GET /metrics``.
        self.tracer = Tracer(max_spans=0)
        self.registry = get_registry()
        self.max_batch_size = max_batch_size
        self.max_delay_ms = max_delay_ms
        self.workers = workers
        self.request_timeout = request_timeout
        self.verbose = verbose

        self.batcher: MicroBatcher | None = None
        self.dispatcher: Dispatcher | None = None
        if workers == 0:
            self.batcher = MicroBatcher(
                engine.impute_records, max_batch_size=max_batch_size,
                max_delay_seconds=max_delay_ms / 1e3)
            self.batcher.on_batch = self.metrics.record_batch
            self.batcher.tracer = self.tracer
        else:
            self.dispatcher = Dispatcher(
                engine, workers, max_queue_depth=max_queue_depth,
                max_batch_size=max_batch_size, max_delay_ms=max_delay_ms,
                row_timeout=request_timeout, tracer=self.tracer)
            self.dispatcher.on_batch = self.metrics.record_batch
        self.started_at = time.monotonic()

        handler = type("BoundHandler", (_Handler,), {"serve_app": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def impute_rows(self, rows: list[dict]) -> list[dict]:
        """Route one request's rows through the configured tier."""
        if self.dispatcher is not None:
            return self.dispatcher.submit(rows,
                                          timeout=self.request_timeout)
        return self.batcher.submit_many(rows,
                                        timeout=self.request_timeout)

    @property
    def is_ready(self) -> bool:
        """Readiness: engine pinned and every worker warmed."""
        if not self.engine.is_pinned:
            return False
        if self.dispatcher is not None:
            return self.dispatcher.all_ready
        return True

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until :attr:`is_ready` (or ``timeout``); returns it."""
        if self.dispatcher is not None:
            self.dispatcher.wait_ready(timeout)
        return self.is_ready

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """Actually bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Actually bound port (resolved when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "ImputationServer":
        """Serve from a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful shutdown: close the listener, then drain the tier.

        The HTTP listener stops accepting first; accepted requests
        drain through the batcher or the dispatch tier before the
        workers are joined (no accepted request is dropped).
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.batcher is not None:
            self.batcher.stop()
        if self.dispatcher is not None:
            self.dispatcher.stop(drain=True)
