"""Tests for the abstract shape/dtype graph checker.

Coherent plans/modules/checkpoints must pass; deliberately broken ones
(mismatched message-passing widths, float64 arrays under a float32
manifest, corrupted CSR structure) must be flagged — all without ever
running a forward pass.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.analysis import (
    check_checkpoint,
    check_module,
    check_operators,
    check_plan,
)
from repro.core import GrimpConfig, GrimpImputer
from repro.corruption import inject_mcar
from repro.data import Table
from repro.gnn.plan import MessagePassingPlan, PlannedOperator
from repro.nn.layers import LayerNorm, Linear, ReLU, Sequential
from repro.serve import save_checkpoint


def structured_table(n_rows=50, seed=0):
    rng = np.random.default_rng(seed)
    cities = ["paris", "rome", "berlin"]
    country_of = {"paris": "france", "rome": "italy", "berlin": "germany"}
    population_of = {"paris": 2.1, "rome": 2.8, "berlin": 3.6}
    chosen = [cities[index] for index in rng.integers(0, 3, n_rows)]
    return Table({
        "city": chosen,
        "country": [country_of[city] for city in chosen],
        "population": [population_of[city] + rng.normal(0, 0.05)
                       for city in chosen],
    })


def fitted_imputer():
    corruption = inject_mcar(structured_table(), 0.15,
                             np.random.default_rng(1))
    imputer = GrimpImputer(GrimpConfig(feature_dim=8, gnn_dim=10,
                                       merge_dim=12, epochs=2, patience=6,
                                       lr=1e-2, seed=0, dtype="float32"))
    imputer.impute(corruption.dirty)
    return imputer


def operator(rows, cols, dtype=np.float32):
    matrix = sparse.random(rows, cols, density=0.2, format="csr",
                           random_state=np.random.RandomState(0),
                           dtype=np.float64)
    return PlannedOperator.compile(matrix, dtype=dtype)


def kinds(problems):
    return sorted({problem.kind for problem in problems})


class TestOperators:
    def test_coherent_operators_pass(self):
        operators = {"city": operator(6, 10), "country": operator(4, 10)}
        assert check_operators(operators, n_feature_rows=10,
                               expected_dtype=np.float32) == []

    def test_width_mismatch_against_features(self):
        operators = {"city": operator(6, 10), "country": operator(4, 9)}
        problems = check_operators(operators, n_feature_rows=10)
        assert kinds(problems) == ["shape"]
        assert any("country" in problem.location for problem in problems)

    def test_cross_operator_disagreement_without_known_rows(self):
        operators = {"city": operator(6, 10), "country": operator(4, 9)}
        problems = check_operators(operators)
        assert kinds(problems) == ["shape"]
        assert "disagree" in problems[0].message

    def test_dtype_mismatch_names_promotion_hazard(self):
        operators = {"city": operator(6, 10, dtype=np.float64)}
        problems = check_operators(operators, n_feature_rows=10,
                                   expected_dtype=np.float32)
        assert kinds(problems) == ["dtype"]
        assert "silent float64 promotion" in problems[0].message

    def test_check_plan_uses_declared_dtype(self):
        adjacencies = {"city": sparse.eye(10, format="csr")}
        plan = MessagePassingPlan(adjacencies, dtype=np.float32)
        assert check_plan(plan, n_feature_rows=10) == []
        # Smuggle in an operator compiled at the wrong dtype.
        plan.operators["rogue"] = operator(5, 10, dtype=np.float64)
        problems = check_plan(plan, n_feature_rows=10)
        assert kinds(problems) == ["dtype"]


class TestModules:
    def test_coherent_chain_passes(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(8, 16, rng=rng), ReLU(),
                           LayerNorm(16), Linear(16, 4, rng=rng))
        assert check_module(model) == []

    def test_linear_chain_break_flagged(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(8, 16, rng=rng), Linear(12, 4, rng=rng))
        problems = check_module(model)
        assert kinds(problems) == ["shape"]
        assert "Linear expects 12" in problems[0].message

    def test_layernorm_width_break_flagged(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(8, 16, rng=rng), LayerNorm(12))
        problems = check_module(model)
        assert kinds(problems) == ["shape"]
        assert "LayerNorm normalizes 12" in problems[0].message

    def test_mixed_parameter_dtypes_flagged(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(8, 8, rng=rng), Linear(8, 4, rng=rng))
        model.layers[0].weight.data = \
            model.layers[0].weight.data.astype(np.float32)
        problems = check_module(model)
        assert kinds(problems) == ["dtype"]
        assert "mixed parameter dtypes" in problems[0].message

    def test_expected_dtype_enforced(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(8, 4, rng=rng))  # float64 default
        problems = check_module(model, expected_dtype=np.float32)
        assert kinds(problems) == ["dtype"]


@pytest.mark.slow
class TestCheckpoints:
    def test_fitted_checkpoint_is_coherent(self, tmp_path):
        imputer = fitted_imputer()
        path = tmp_path / "model.ckpt"
        save_checkpoint(imputer, path)
        assert check_checkpoint(path) == []

    def test_tampered_checkpoint_is_flagged(self, tmp_path):
        imputer = fitted_imputer()
        path = tmp_path / "model.ckpt"
        save_checkpoint(imputer, path)

        arrays = dict(np.load(path / "arrays.npz"))
        # Break one adjacency's CSR structure and promote a parameter.
        arrays["adj/0/indptr"] = arrays["adj/0/indptr"][:-2]
        param_name = next(name for name in arrays
                          if name.startswith("param/"))
        arrays[param_name] = arrays[param_name].astype(np.float64)
        np.savez(path / "arrays.npz", **arrays)

        problems = check_checkpoint(path)
        assert "structure" in kinds(problems)
        assert "dtype" in kinds(problems)
        assert any(problem.location == param_name for problem in problems)

    def test_shrunken_features_break_width_agreement(self, tmp_path):
        imputer = fitted_imputer()
        path = tmp_path / "model.ckpt"
        save_checkpoint(imputer, path)

        arrays = dict(np.load(path / "arrays.npz"))
        arrays["features"] = arrays["features"][:-3]
        np.savez(path / "arrays.npz", **arrays)

        problems = check_checkpoint(path)
        assert "shape" in kinds(problems)
        assert any("feature matrix has" in problem.message
                   for problem in problems)

    def test_cli_check_plans_flag(self, tmp_path, capsys):
        from repro.cli import main

        imputer = fitted_imputer()
        path = tmp_path / "model.ckpt"
        save_checkpoint(imputer, path)
        source = tmp_path / "empty.py"
        source.write_text("x = 1\n")

        assert main(["lint", str(source),
                     "--check-plans", str(path)]) == 0
        assert "is coherent" in capsys.readouterr().out

        arrays = dict(np.load(path / "arrays.npz"))
        arrays["adj/0/indptr"] = arrays["adj/0/indptr"][:-2]
        np.savez(path / "arrays.npz", **arrays)
        assert main(["lint", str(source),
                     "--check-plans", str(path)]) == 1
        output = capsys.readouterr().out
        assert "[structure]" in output and "problem(s)" in output

    def test_problem_rendering(self):
        problems = check_operators({"city": operator(6, 10)},
                                   n_feature_rows=9)
        rendered = problems[0].render()
        assert rendered.startswith("[shape] city:")
        assert problems[0].to_json()["kind"] == "shape"
