#!/bin/sh
# Local dry run of .github/workflows/ci.yml, step for step, without any
# package installation (the repo runs from source via PYTHONPATH=src,
# which the Makefile exports).  Mirrors the workflow jobs:
#
#   lint        -> python -m compileall over every source tree, then
#                  the project lint rules (`repro lint`)
#   test        -> make test-fast, then the slow/bench-marked tests
#   dp-smoke    -> make dp-smoke (DP parity + worker determinism)
#   bench-gate  -> make ci-gate (smoke benchmarks + baseline check)
#
# Usage:  sh scripts/ci_dry_run.sh          # from the repository root
# Exits non-zero at the first failing step, like the workflow.
set -eu

cd "$(dirname "$0")/.."

echo "==> [lint] byte-compile src tests benchmarks scripts"
python -m compileall -q src tests benchmarks scripts

echo "==> [lint] project lint rules (repro lint, interprocedural)"
PYTHONPATH=src python -m repro lint src/repro benchmarks scripts examples \
    --output lint-report.json

echo "==> [test] fast suite (slow/bench deselected)"
make test-fast

echo "==> [test] slow and bench-marked tests"
PYTHONPATH=src python -m pytest -q -m "slow or bench"

echo "==> [dp-smoke] data-parallel parity + worker-count determinism"
make dp-smoke

echo "==> [bench-gate] smoke benchmarks + baseline regression gate"
make ci-gate

echo "==> CI dry run passed"
