"""Serving subsystem: checkpointing + online imputation service.

Layers, bottom-up:

* :mod:`~repro.serve.checkpoint` — versioned on-disk format (npz +
  JSON manifest) that round-trips a fitted
  :class:`~repro.core.GrimpImputer` exactly.
* :mod:`~repro.serve.engine` — loads a checkpoint once, pins the GNN
  node representations, and imputes batches of new rows without
  touching the training path.
* :mod:`~repro.serve.batcher` — thread-safe micro-batching of
  concurrent single-row requests (max-latency/max-batch-size policy).
* :mod:`~repro.serve.server` — stdlib threaded HTTP server exposing
  ``POST /impute``, ``GET /healthz``, and ``GET /metrics``
  (``repro serve`` on the CLI).
"""

from .checkpoint import (CheckpointError, CHECKPOINT_FORMAT,
                         CHECKPOINT_VERSION, load_checkpoint, load_imputer,
                         save_checkpoint)
from .engine import InferenceEngine, records_to_table, table_to_records
from .batcher import BatcherStopped, MicroBatcher
from .metrics import ServingMetrics, percentile
from .server import ImputationServer

__all__ = [
    "CheckpointError",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "load_imputer",
    "InferenceEngine",
    "records_to_table",
    "table_to_records",
    "MicroBatcher",
    "BatcherStopped",
    "ServingMetrics",
    "percentile",
    "ImputationServer",
]
