"""Differentiable functional operations built on :class:`~repro.tensor.Tensor`.

These cover the loss functions and activations GRIMP needs (§3.6 of the
paper): cross-entropy and focal loss for categorical tasks, MSE/RMSE for
numerical tasks, plus softmax utilities and dropout.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "focal_loss",
    "mse_loss",
    "rmse_loss",
    "binary_cross_entropy",
    "dropout",
    "embedding_lookup",
]


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = Tensor.ensure(logits)
    shifted_data = logits.data - logits.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted_data)
    denominator = exp.sum(axis=axis, keepdims=True)
    out_data = shifted_data - np.log(denominator)
    probabilities = exp / denominator

    def backward(grad):
        total = grad.sum(axis=axis, keepdims=True)
        logits._accumulate(grad - probabilities * total, owned=True)

    return logits._make(out_data, (logits,), backward, "log_softmax")


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None,
                  reduction: str = "mean") -> Tensor:
    """Cross-entropy between raw ``logits`` of shape ``(n, k)`` and
    integer class ``targets`` of shape ``(n,)``.

    Parameters
    ----------
    weights:
        Optional per-sample weights of shape ``(n,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(targets.shape[0])
    picked = log_probs[rows, targets]
    losses = -picked
    if weights is not None:
        losses = losses * Tensor(np.asarray(weights, dtype=losses.dtype))
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def focal_loss(logits: Tensor, targets: np.ndarray, gamma: float = 2.0,
               reduction: str = "mean") -> Tensor:
    """Focal loss (Lin et al.) used by GRIMP as an alternative categorical
    loss that down-weights easy (frequent) classes.

    ``FL = -(1 - p_t)^gamma * log(p_t)``
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(targets.shape[0])
    picked = log_probs[rows, targets]
    pt = picked.exp()
    losses = -((1.0 - pt) ** gamma) * picked
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def mse_loss(predictions: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Mean squared error between ``predictions`` and ``targets``."""
    targets = Tensor.ensure(targets)
    diff = predictions - targets
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    if reduction == "none":
        return squared
    raise ValueError(f"unknown reduction {reduction!r}")


def rmse_loss(predictions: Tensor, targets) -> Tensor:
    """Root mean squared error (the numerical-task loss in Algorithm 1)."""
    return (mse_loss(predictions, targets) + 1e-12) ** 0.5


def binary_cross_entropy(probabilities: Tensor, targets,
                         reduction: str = "mean") -> Tensor:
    """BCE over probabilities in ``(0, 1)`` (used by the link-prediction
    baseline the paper mentions in §4.1)."""
    targets = Tensor.ensure(targets)
    clipped = probabilities.clip(1e-9, 1.0 - 1e-9)
    losses = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero each element with probability ``p`` and
    rescale survivors by ``1 / (1 - p)`` so expectations match at test time.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    x = Tensor.ensure(x)
    mask = ((rng.random(x.shape) >= p) / (1.0 - p)).astype(x.data.dtype,
                                                           copy=False)
    return x * Tensor(mask)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of an embedding matrix; gradients scatter-add back.

    Equivalent to ``weight[indices]`` but named for readability at call
    sites that implement the paper's node-feature lookups.
    """
    return weight[np.asarray(indices, dtype=np.int64)]
