"""Markdown summary of scaling-sensitive benchmark gates.

The serve and dp benchmarks compute their scaling targets from the
cores the runner will actually schedule
(:func:`repro.parallel.schedulable_cores`, which honors
``$REPRO_BENCH_CORES`` exported by the CI core-detection step).  On a
starved runner those gates run in *floor mode* — holding a
don't-regress bound instead of the paper-level speedup target — and a
green check can therefore mean less than it appears to.  This script
renders the distinction where reviewers look: the workflow step
summary.

Usage::

    python scripts/bench_summary.py BENCH_*_manifest.json \
        >> "$GITHUB_STEP_SUMMARY"

Missing files and manifests without scaling metrics are skipped, so
the step never fails a run that already uploaded its artifacts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Per-benchmark scaling metrics: (cores key, floor-mode key,
#: speedup key, target key, pass/fail key).
SCALING_KEYS = {
    "serve": ("scaling.cpu_count", "scaling.floor_mode",
              "speedup.dispatched_top_vs_threaded", "scaling.target",
              "dispatched_meets_scaling_target"),
    "dp": ("scaling.cores", "scaling.floor_mode", "scaling.speedup",
           "scaling.target", "scaling.meets_target"),
}


def summarize(paths: list[str]) -> str:
    rows = []
    for raw in paths:
        path = Path(raw)
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        benchmark = manifest.get("run", {}).get("benchmark")
        metrics = manifest.get("metrics", {})
        keys = SCALING_KEYS.get(benchmark)
        if keys is None or not isinstance(metrics, dict):
            continue
        cores_key, floor_key, speedup_key, target_key, meets_key = keys
        if floor_key not in metrics:
            continue
        floor = bool(metrics.get(floor_key))
        meets = metrics.get(meets_key)
        status = "pass" if meets else "FAIL"
        if floor:
            status += " (floor mode)"
        rows.append((benchmark, metrics.get(cores_key),
                     metrics.get(speedup_key), metrics.get(target_key),
                     status))
    lines = ["## Scaling gates", ""]
    if not rows:
        lines.append("No scaling-gated manifests found.")
        return "\n".join(lines) + "\n"
    lines += ["| benchmark | cores | speedup | target | gate |",
              "|---|---|---|---|---|"]
    for benchmark, cores, speedup, target, status in rows:
        lines.append(
            f"| {benchmark} | {cores:g} | {speedup:.2f}x "
            f"| {target:.2f}x | {status} |")
    if any("floor mode" in row[4] for row in rows):
        lines += ["",
                  "Floor mode: the runner schedules too few cores for "
                  "the paper-level speedup target, so the gate only "
                  "holds a don't-regress bound. Re-run on a wider box "
                  "to exercise the real target."]
    return "\n".join(lines) + "\n"


def main(argv: list[str]) -> int:
    sys.stdout.write(summarize(argv))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
