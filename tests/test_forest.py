"""Tests for the CART tree and random-forest substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forest import DecisionTree, RandomForest


def blobs(n=200, seed=0):
    """Two well-separated Gaussian blobs in 2D."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=-2.0, scale=0.5, size=(n // 2, 2))
    x1 = rng.normal(loc=2.0, scale=0.5, size=(n // 2, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


class TestDecisionTree:
    def test_fits_separable_data_perfectly(self):
        x, y = blobs()
        tree = DecisionTree(task="classification", max_depth=3).fit(x, y)
        assert (tree.predict(x) == y).all()

    def test_pure_node_becomes_leaf(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTree(max_depth=5).fit(x, y)
        assert tree.depth() == 0
        assert (tree.predict(x) == 1).all()

    def test_max_depth_respected(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((200, 4))
        y = rng.integers(0, 2, 200)
        tree = DecisionTree(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        x, y = blobs(20)
        tree = DecisionTree(max_depth=10, min_samples_leaf=10).fit(x, y)
        # 20 samples, min leaf 10 -> at most one split.
        assert tree.depth() <= 1

    def test_regression_fits_step_function(self):
        x = np.linspace(0, 1, 100)[:, None]
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTree(task="regression", max_depth=2).fit(x, y)
        predictions = tree.predict(x)
        assert np.abs(predictions - y).mean() < 0.5

    def test_regression_leaf_predicts_mean(self):
        x = np.zeros((4, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0])
        tree = DecisionTree(task="regression").fit(x, y)
        assert tree.predict(np.zeros((1, 1)))[0] == pytest.approx(2.5)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            DecisionTree(task="ranking")

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((2, 1)), np.array([-1, 0]))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 5))
        y = rng.integers(0, 3, 100)
        a = DecisionTree(max_features="sqrt", seed=7).fit(x, y).predict(x)
        b = DecisionTree(max_features="sqrt", seed=7).fit(x, y).predict(x)
        assert (a == b).all()

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_predictions_within_label_range(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((50, 3))
        y = rng.integers(0, 4, 50)
        tree = DecisionTree(max_depth=4, seed=seed).fit(x, y)
        predictions = tree.predict(rng.standard_normal((20, 3)))
        assert ((predictions >= 0) & (predictions <= 3)).all()


class TestRandomForest:
    def test_classification_accuracy(self):
        x, y = blobs(300)
        forest = RandomForest(n_trees=5, max_depth=4, seed=0).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.98

    def test_regression(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, (300, 2))
        y = 3.0 * x[:, 0] + 1.0
        forest = RandomForest(task="regression", n_trees=5,
                              max_depth=6, seed=0).fit(x, y)
        predictions = forest.predict(x)
        assert np.abs(predictions - y).mean() < 0.5

    def test_predict_proba_sums_to_one(self):
        x, y = blobs(100)
        forest = RandomForest(n_trees=4, seed=0).fit(x, y)
        probabilities = forest.predict_proba(x[:10])
        assert probabilities.shape == (10, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_predict_proba_rejected_for_regression(self):
        forest = RandomForest(task="regression", n_trees=2, seed=0)
        forest.fit(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(RuntimeError):
            forest.predict_proba(np.zeros((1, 1)))

    def test_focused_trees_use_whitelist_only(self):
        # Label depends only on feature 2; focusing every tree on
        # feature 0 (noise) must destroy accuracy.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((200, 3))
        y = (x[:, 2] > 0).astype(int)
        focused = RandomForest(n_trees=4, focused_features=[0],
                               focus_fraction=1.0, seed=0).fit(x, y)
        free = RandomForest(n_trees=4, seed=0).fit(x, y)
        assert (free.predict(x) == y).mean() > \
            (focused.predict(x) == y).mean()

    def test_focus_helps_when_whitelist_is_informative(self):
        # FUNFOREST's premise: focusing on the informative feature
        # against many noise features speeds/boosts learning.
        rng = np.random.default_rng(1)
        x = rng.standard_normal((150, 10))
        y = (x[:, 3] > 0).astype(int)
        focused = RandomForest(n_trees=4, max_depth=3,
                               focused_features=[3], focus_fraction=1.0,
                               seed=0).fit(x, y)
        assert (focused.predict(x) == y).mean() > 0.95

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.zeros((1, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomForest(n_trees=0)
        with pytest.raises(ValueError):
            RandomForest(focus_fraction=1.5)

    def test_deterministic_given_seed(self):
        x, y = blobs(100, seed=3)
        a = RandomForest(n_trees=3, seed=11).fit(x, y).predict(x)
        b = RandomForest(n_trees=3, seed=11).fit(x, y).predict(x)
        assert (a == b).all()
