"""DataWig-style baseline [5]: independent per-attribute imputation models.

Each target attribute gets its own model over featurized context
columns — hashed character n-grams for strings (DataWig's n-gram
encoder) and z-scores for numerics — trained with a single loss.  The
three properties the paper contrasts against GRIMP hold by
construction: attribute embeddings are learned independently, the
featurizer is task-agnostic, and there is no multi-task sharing.
"""

from __future__ import annotations

import numpy as np

from ..data import MISSING, Table
from ..imputation import Imputer
from ..nn import Adam, MLP
from ..tensor import Tensor, cross_entropy, mse_loss
from .featurize import hash_ngrams
from .neural_common import encode_for_neural

__all__ = ["DataWigImputer"]


class DataWigImputer(Imputer):
    """Per-attribute MLP imputer with n-gram hashing string features."""

    NAME = "datawig"

    def __init__(self, string_buckets: int = 32, hidden_dim: int = 32,
                 epochs: int = 60, lr: float = 5e-3, seed: int = 0):
        self.string_buckets = string_buckets
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed

    def _featurize(self, encoded, skip_column: str) -> np.ndarray:
        """Feature matrix from all columns except ``skip_column``."""
        table = encoded.table
        parts: list[np.ndarray] = []
        for column in table.column_names:
            if column == skip_column:
                continue
            mask = encoded.observed[column]
            if table.is_categorical(column):
                block = np.zeros((table.n_rows, self.string_buckets))
                cache: dict[object, np.ndarray] = {}
                values = table.column(column)
                for row in range(table.n_rows):
                    if not mask[row]:
                        continue
                    value = values[row]
                    if value not in cache:
                        cache[value] = hash_ngrams(str(value),
                                                   self.string_buckets)
                    block[row] = cache[value]
                parts.append(block)
            else:
                parts.append(encoded.numerics[column][:, None] *
                             mask[:, None])
        return np.hstack(parts) if parts else np.zeros((table.n_rows, 0))

    def impute(self, dirty: Table) -> Table:
        imputed = dirty.copy()
        missing = dirty.missing_cells()
        if not missing:
            return imputed
        encoded = encode_for_neural(dirty)
        rng = np.random.default_rng(self.seed)
        missing_columns = sorted({column for _, column in missing},
                                 key=dirty.column_names.index)
        for column in missing_columns:
            observed = encoded.observed[column]
            if observed.sum() < 2:
                continue
            features = self._featurize(encoded, skip_column=column)
            if features.shape[1] == 0:
                continue
            x_observed = features[observed]
            x_missing = features[~observed]
            if dirty.is_categorical(column):
                cardinality = encoded.cardinality(column)
                if cardinality == 0:
                    continue
                model = MLP([features.shape[1], self.hidden_dim, cardinality],
                            rng=rng)
                targets = encoded.codes[column][observed]
                loss_fn = lambda out: cross_entropy(out, targets)  # noqa: E731
            else:
                model = MLP([features.shape[1], self.hidden_dim, 1], rng=rng)
                targets = encoded.numerics[column][observed]
                loss_fn = lambda out: mse_loss(  # noqa: E731
                    out.reshape(out.shape[0]), targets)

            optimizer = Adam(model.parameters(), lr=self.lr)
            x_tensor = Tensor(x_observed)
            for _ in range(self.epochs):
                optimizer.zero_grad()
                loss = loss_fn(model(x_tensor))
                loss.backward()
                optimizer.step()

            predictions = model(Tensor(x_missing)).data
            rows = np.flatnonzero(~observed)
            if dirty.is_categorical(column):
                for row, code in zip(rows, predictions.argmax(axis=1)):
                    imputed.set(row, column, encoded.decode(column, int(code)))
            else:
                for row, value in zip(rows, predictions.reshape(-1)):
                    imputed.set(row, column,
                                encoded.denormalize(column, float(value)))
        return imputed
