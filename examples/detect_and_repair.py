"""The full detect-then-repair pipeline of the paper's §2.

The problem setup assumes "an orthogonal error detection procedure has
been used to mark erroneous cells".  This example runs that whole loop:

1. corrupt a clean table with *wrong values* (typos and planted FD
   violations) rather than blanks,
2. detect suspicious cells with an ensemble of detectors,
3. mark them missing and impute with GRIMP,
4. measure how many corrupted cells were found and repaired.

Run:  python examples/detect_and_repair.py
"""

import numpy as np

from repro.core import GrimpConfig, GrimpImputer
from repro.corruption import inject_typos
from repro.datasets import dataset_fds, load
from repro.detection import (
    EnsembleDetector,
    FdViolationDetector,
    NumericOutlierDetector,
    mark_errors,
)


def main() -> None:
    clean = load("tax", n_rows=400, seed=0)
    fds = dataset_fds("tax")
    rng = np.random.default_rng(1)

    # --- corrupt: typos in strings + gross numeric outliers ----------
    corrupted, typo_cells = inject_typos(clean, 0.05, rng)
    outlier_cells = []
    salary = corrupted.column("salary")
    for row in rng.choice(clean.n_rows, size=10, replace=False):
        corrupted.set(int(row), "salary", float(salary[row]) * 100)
        outlier_cells.append((int(row), "salary"))
    corrupted_cells = set(typo_cells) | set(outlier_cells)
    print(f"corrupted {len(corrupted_cells)} cells "
          f"({len(typo_cells)} typos, {len(outlier_cells)} outliers)")

    # --- detect -------------------------------------------------------
    detector = EnsembleDetector([
        NumericOutlierDetector(threshold=4.0),
        FdViolationDetector(fds),
    ], mode="union")
    marked, flagged = mark_errors(corrupted, detector)
    found = corrupted_cells & flagged
    precision = len(found) / len(flagged) if flagged else 0.0
    recall = len(found) / len(corrupted_cells)
    print(f"detector flagged {len(flagged)} cells: "
          f"precision={precision:.2f} recall={recall:.2f}")

    # --- repair: FD votes first (precise), then GRIMP for the rest ---
    from repro.baselines import FdRepairImputer
    repaired = FdRepairImputer(fds).impute(marked)
    config = GrimpConfig(feature_dim=12, gnn_dim=16, merge_dim=24,
                         epochs=40, patience=6, lr=1e-2, fds=fds,
                         k_strategy="weak_diagonal_fd", seed=0)
    repaired = GrimpImputer(config).impute(repaired)

    fixed = sum(1 for row, column in found
                if repaired.get(row, column) == clean.get(row, column))
    print(f"of the {len(found)} detected corruptions, "
          f"{fixed} were repaired back to the original value "
          f"({fixed / max(1, len(found)):.0%})")


if __name__ == "__main__":
    main()
