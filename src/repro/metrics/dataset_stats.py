"""Value-distribution statistics from the paper's §5 and Table 1.

For every column the frequency of each unique value is measured; the
four metrics are computed over that frequency distribution and averaged
across columns:

* ``S_avg`` — Fisher-Pearson skewness of the frequencies;
* ``K_avg`` — Fisher kurtosis of the frequencies;
* ``F+_avg`` — fraction of rows whose value is *frequent*, where a value
  is frequent when its count exceeds the 90% quantile of counts in the
  column;
* ``N+_avg`` — number of distinct frequent values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..data import Table

__all__ = ["ColumnStats", "DatasetStats", "column_statistics",
           "dataset_statistics", "global_distinct"]


@dataclass(frozen=True)
class ColumnStats:
    """Frequency-distribution statistics of one column."""

    skewness: float
    kurtosis: float
    f_plus: float
    n_plus: int
    n_distinct: int


@dataclass(frozen=True)
class DatasetStats:
    """Table 1's derived statistics for a whole dataset."""

    s_avg: float
    k_avg: float
    f_plus_avg: float
    n_plus_avg: float
    distinct: int
    n_rows: int
    n_columns: int
    n_categorical: int
    n_numerical: int


def column_statistics(table: Table, column: str,
                      quantile: float = 0.9) -> ColumnStats:
    """Compute the §5 metrics for one column."""
    counts = np.array(sorted(table.value_counts(column).values()),
                      dtype=float)
    if counts.size == 0:
        return ColumnStats(0.0, 0.0, 0.0, 0, 0)
    if counts.size == 1 or counts.std() < 1e-12:
        # Identical frequencies: moments degenerate (scipy returns nan).
        skewness, kurtosis = 0.0, 0.0
    else:
        skewness = float(scipy_stats.skew(counts))
        kurtosis = float(scipy_stats.kurtosis(counts))  # Fisher definition
    threshold = float(np.quantile(counts, quantile))
    frequent = counts[counts > threshold]
    total_rows = counts.sum()
    f_plus = float(frequent.sum() / total_rows) if total_rows else 0.0
    return ColumnStats(skewness=skewness, kurtosis=kurtosis, f_plus=f_plus,
                       n_plus=int(frequent.size),
                       n_distinct=int(counts.size))


def global_distinct(table: Table) -> int:
    """Number of unique values in the entire dataset (Table 1's
    "Distinct" counts a value once even if it appears in two columns)."""
    values = set()
    for column in table.column_names:
        values.update(table.domain(column))
    return len(values)


def dataset_statistics(table: Table, quantile: float = 0.9) -> DatasetStats:
    """Per-column §5 metrics averaged into the Table 1 row."""
    per_column = [column_statistics(table, column, quantile=quantile)
                  for column in table.column_names]
    return DatasetStats(
        s_avg=float(np.mean([stats.skewness for stats in per_column])),
        k_avg=float(np.mean([stats.kurtosis for stats in per_column])),
        f_plus_avg=float(np.mean([stats.f_plus for stats in per_column])),
        n_plus_avg=float(np.mean([stats.n_plus for stats in per_column])),
        distinct=global_distinct(table),
        n_rows=table.n_rows,
        n_columns=table.n_columns,
        n_categorical=len(table.categorical_columns),
        n_numerical=len(table.numerical_columns),
    )
