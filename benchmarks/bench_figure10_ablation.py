"""Figure 10: component ablation — GRIMP-MT vs GNN-MC vs EmbDI-MC.

GRIMP-MT is the full system; GNN-MC keeps graph representation learning
but replaces the multi-task heads with a single global classifier;
EmbDI-MC drops the GNN as well.  The paper's shape: each removed
component costs accuracy, so GRIMP-MT > GNN-MC > EmbDI-MC on average.
"""

import pytest

from repro.experiments import (
    ABLATION_ALGORITHMS,
    average_accuracy,
    format_figure10,
    run_grid,
)
from conftest import save_artifact

DATASETS = ["adult", "flare", "mammogram", "contraceptive", "tictactoe"]


def _run():
    return run_grid(DATASETS, list(ABLATION_ALGORITHMS),
                    error_rates=(0.05, 0.20, 0.50), n_rows=220, seed=0)


@pytest.mark.benchmark(group="figure10")
def test_figure10_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    averages = {algorithm: average_accuracy(results, algorithm)
                for algorithm in ABLATION_ALGORITHMS}
    text = "\n".join([format_figure10(results), "Averages:"] +
                     [f"  {algorithm:10} {value:.3f}"
                      for algorithm, value in averages.items()])
    save_artifact("figure10", text)

    # The headline ordering: full multi-task GRIMP beats the single
    # global classifier, which needs the GNN to beat frozen EmbDI
    # features.
    assert averages["grimp-mt"] > averages["gnn-mc"]
    assert averages["grimp-mt"] > averages["embdi-mc"]
