"""Table 1: dataset statistics at the paper's full sizes.

Generates all ten datasets at their published row counts, computes the
value-distribution metrics of §5 and the parameter-count formulas of
§4.1, and prints them next to the paper's values.
"""

import numpy as np
import pytest

from repro.core import parameter_counts
from repro.datasets import DATASETS, dataset_names, load
from repro.metrics import dataset_statistics
from conftest import save_artifact
from repro.experiments import format_table1


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_statistics(benchmark):
    text = benchmark.pedantic(format_table1, rounds=1, iterations=1)
    save_artifact("table1", text)

    # Schema-level statistics must match the paper exactly.
    for name in dataset_names():
        entry = DATASETS[name]
        table = load(name)
        stats = dataset_statistics(table)
        assert stats.n_rows == entry.paper.n_rows
        assert stats.n_categorical == entry.paper.n_categorical
        assert stats.n_numerical == entry.paper.n_numerical
        assert len(entry.fds) == entry.paper.n_fds
        counts = parameter_counts(table.n_columns)
        # The parameter formulas reproduce Table 1 exactly.
        if name == "adult":
            assert (counts.shared, counts.linear_total,
                    counts.attention_total) == (2048, 5632, 8572)

    # Distribution shape: IMDB is the unique-heavy extreme, Flare and
    # Thoracic the frequent-dominated extremes, as in the paper.
    imdb = dataset_statistics(load("imdb"))
    flare = dataset_statistics(load("flare"))
    thoracic = dataset_statistics(load("thoracic"))
    assert imdb.n_plus_avg > flare.n_plus_avg
    assert imdb.distinct > 5000
    assert flare.distinct < 60
    assert thoracic.f_plus_avg > 0.4
