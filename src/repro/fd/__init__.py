"""Functional dependencies: representation, checking, discovery, repair."""

from .fd import FunctionalDependency, fd_holds, fd_violations
from .discovery import discover_fds
from .repair import fd_vote
from .denial import (
    Predicate,
    DenialConstraint,
    dc_violations,
    dc_holds,
    fd_to_dc,
)

__all__ = ["FunctionalDependency", "fd_holds", "fd_violations",
           "discover_fds", "fd_vote", "Predicate", "DenialConstraint",
           "dc_violations", "dc_holds", "fd_to_dc"]
