"""Differentiable functional operations built on :class:`~repro.tensor.Tensor`.

These cover the loss functions and activations GRIMP needs (§3.6 of the
paper): cross-entropy and focal loss for categorical tasks, MSE/RMSE for
numerical tasks, plus softmax utilities and dropout.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _matmul, _scratch, _unbroadcast

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "focal_loss",
    "mse_loss",
    "rmse_loss",
    "binary_cross_entropy",
    "dropout",
    "embedding_lookup",
    "linear",
    "layer_norm",
]


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = Tensor.ensure(logits)
    shifted_data = logits.data - logits.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted_data)
    denominator = exp.sum(axis=axis, keepdims=True)
    out_data = shifted_data - np.log(denominator)
    probabilities = exp / denominator

    def backward(grad):
        # ``grad - probabilities * total`` with a pooled product buffer.
        total = grad.sum(axis=axis, keepdims=True)
        scratch = np.multiply(probabilities, total,
                              out=_scratch(probabilities.shape,
                                           probabilities.dtype))
        np.subtract(grad, scratch, out=scratch)
        logits._accumulate(scratch, owned=True)

    return logits._make(out_data, (logits,), backward, "log_softmax")


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None,
                  reduction: str = "mean") -> Tensor:
    """Cross-entropy between raw ``logits`` of shape ``(n, k)`` and
    integer class ``targets`` of shape ``(n,)``.

    Parameters
    ----------
    weights:
        Optional per-sample weights of shape ``(n,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(targets.shape[0])
    picked = log_probs[rows, targets]
    losses = -picked
    if weights is not None:
        losses = losses * Tensor(np.asarray(weights, dtype=losses.dtype))
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def focal_loss(logits: Tensor, targets: np.ndarray, gamma: float = 2.0,
               reduction: str = "mean") -> Tensor:
    """Focal loss (Lin et al.) used by GRIMP as an alternative categorical
    loss that down-weights easy (frequent) classes.

    ``FL = -(1 - p_t)^gamma * log(p_t)``
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(targets.shape[0])
    picked = log_probs[rows, targets]
    pt = picked.exp()
    losses = -((1.0 - pt) ** gamma) * picked
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def mse_loss(predictions: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Mean squared error between ``predictions`` and ``targets``."""
    targets = Tensor.ensure(targets)
    diff = predictions - targets
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    if reduction == "none":
        return squared
    raise ValueError(f"unknown reduction {reduction!r}")


def rmse_loss(predictions: Tensor, targets) -> Tensor:
    """Root mean squared error (the numerical-task loss in Algorithm 1)."""
    return (mse_loss(predictions, targets) + 1e-12) ** 0.5


def binary_cross_entropy(probabilities: Tensor, targets,
                         reduction: str = "mean") -> Tensor:
    """BCE over probabilities in ``(0, 1)`` (used by the link-prediction
    baseline the paper mentions in §4.1)."""
    targets = Tensor.ensure(targets)
    clipped = probabilities.clip(1e-9, 1.0 - 1e-9)
    losses = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero each element with probability ``p`` and
    rescale survivors by ``1 / (1 - p)`` so expectations match at test time.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    x = Tensor.ensure(x)
    mask = ((rng.random(x.shape) >= p) / (1.0 - p)).astype(x.data.dtype,
                                                           copy=False)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused affine ``x @ weight (+ bias)`` as a single graph node.

    One node instead of a matmul node plus an add node: the forward
    adds the bias in place into the product buffer, and the backward
    runs each gradient GEMM straight into a workspace buffer when an
    arena is active.  The floating-point operation sequence matches the
    composed ``(x @ w) + b`` exactly, so switching :class:`repro.nn.
    Linear` to this kernel changes no results.
    """
    out_data = _matmul(x.data, weight.data)
    if bias is not None:
        if bias.data.dtype == out_data.dtype:
            np.add(out_data, bias.data, out=out_data)
        else:
            out_data = out_data + bias.data
        parents: tuple[Tensor, ...] = (x, weight, bias)
    else:
        parents = (x, weight)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(
                _unbroadcast(_matmul(grad, np.swapaxes(weight.data, -1, -2)),
                             x.shape), owned=True)
        if weight.requires_grad:
            weight._accumulate(
                _unbroadcast(_matmul(np.swapaxes(x.data, -1, -2), grad),
                             weight.shape), owned=True)
        if bias is not None and bias.requires_grad:
            g = _unbroadcast(grad, bias.shape)
            bias._accumulate(g, owned=g is not grad)

    return x._make(out_data, parents, backward, "linear")


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Fused layer normalization over the last dimension.

    ``(x - mean) / sqrt(var + eps) * gamma + beta`` computed with
    workspace-pooled full-size buffers (four rents instead of roughly a
    dozen row-sized temporaries from the composed-op formulation); the
    backward is the standard closed-form LayerNorm gradient, verified
    by gradcheck in ``tests/test_arena.py``.
    """
    data = x.data
    dtype = data.dtype
    mean = data.mean(axis=-1, keepdims=True)
    centered = np.subtract(data, mean, out=_scratch(data.shape, dtype))
    squared = np.multiply(centered, centered,
                          out=_scratch(data.shape, dtype))
    rstd = squared.mean(axis=-1, keepdims=True)
    rstd += eps
    np.power(rstd, -0.5, out=rstd)
    normalized = np.multiply(centered, rstd, out=squared)
    out_data = np.multiply(normalized, gamma.data,
                           out=_scratch(data.shape, dtype))
    if beta.data.dtype == dtype:
        np.add(out_data, beta.data, out=out_data)
    else:
        out_data = out_data + beta.data

    def backward(grad):
        if beta.requires_grad:
            g = _unbroadcast(grad, beta.shape)
            beta._accumulate(g, owned=g is not grad)
        if gamma.requires_grad:
            scaled = np.multiply(grad, normalized,
                                 out=_scratch(grad.shape, grad.dtype))
            gamma._accumulate(_unbroadcast(scaled, gamma.shape),
                              owned=True)
        if x.requires_grad:
            # dx = rstd * (g - mean(g) - normalized * mean(g * normalized))
            # with g = grad * gamma and means over the last axis.
            g = np.multiply(grad, gamma.data,
                            out=_scratch(grad.shape, grad.dtype))
            mean_g = g.mean(axis=-1, keepdims=True)
            projected = np.multiply(g, normalized,
                                    out=_scratch(grad.shape, grad.dtype))
            mean_projected = projected.mean(axis=-1, keepdims=True)
            np.multiply(normalized, mean_projected, out=projected)
            np.subtract(g, mean_g, out=g)
            np.subtract(g, projected, out=g)
            np.multiply(g, rstd, out=g)
            x._accumulate(g, owned=True)

    return x._make(out_data, (x, gamma, beta), backward, "layer_norm")


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of an embedding matrix; gradients scatter-add back.

    Equivalent to ``weight[indices]`` but named for readability at call
    sites that implement the paper's node-feature lookups.
    """
    return weight[np.asarray(indices, dtype=np.int64)]
