"""Tests for the Table substrate (schema, cells, missing values, stats)."""

import numpy as np
import pytest

from repro.data import (
    MISSING,
    Table,
    ColumnEncoder,
    TableEncoder,
    NumericNormalizer,
    round_numeric,
    read_csv,
    write_csv,
)


@pytest.fixture
def movies():
    return Table({
        "year": [2015.0, MISSING, 2001.0],
        "country": [MISSING, "France", "France"],
        "title": ["The Martian", "Amelie", "Amelie"],
    })


class TestSchema:
    def test_kind_inference(self, movies):
        assert movies.kinds == {"year": "numerical", "country": "categorical",
                                "title": "categorical"}

    def test_explicit_kinds_override(self):
        table = Table({"code": [1, 2, 3]}, kinds={"code": "categorical"})
        assert table.is_categorical("code")

    def test_bools_are_categorical(self):
        table = Table({"flag": [True, False]})
        assert table.is_categorical("flag")

    def test_all_missing_column_is_categorical(self):
        table = Table({"x": [MISSING, MISSING]})
        assert table.is_categorical("x")

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": [1], "b": [1, 2]})

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            Table({})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": [1]}, kinds={"a": "textual"})

    def test_shape_and_partitions(self, movies):
        assert movies.shape == (3, 3)
        assert movies.categorical_columns == ["country", "title"]
        assert movies.numerical_columns == ["year"]


class TestCells:
    def test_get_set_roundtrip(self, movies):
        movies.set(0, "country", "USA")
        assert movies.get(0, "country") == "USA"
        movies[1, "year"] = 1999
        assert movies[1, "year"] == pytest.approx(1999.0)
        assert isinstance(movies[1, "year"], float)

    def test_set_missing(self, movies):
        movies.set(2, "title", MISSING)
        assert movies.is_missing(2, "title")

    def test_row_access(self, movies):
        row = movies.row(1)
        assert row == {"year": MISSING, "country": "France", "title": "Amelie"}


class TestMissing:
    def test_missing_mask(self, movies):
        mask = movies.missing_mask()
        assert mask.sum() == 2
        assert mask[1, 0] and mask[0, 1]

    def test_missing_cells(self, movies):
        assert set(movies.missing_cells()) == {(1, "year"), (0, "country")}

    def test_missing_fraction(self, movies):
        assert movies.missing_fraction() == pytest.approx(2 / 9)


class TestDomains:
    def test_domain_excludes_missing(self, movies):
        assert movies.domain("country") == ["France"]
        assert movies.domain("year") == [2001.0, 2015.0]

    def test_value_counts(self, movies):
        assert movies.value_counts("title") == {"The Martian": 1, "Amelie": 2}

    def test_n_distinct_counts_per_column(self):
        # "x" appears in both columns -> counted twice (paper's
        # disambiguation rule).
        table = Table({"a": ["x", "y"], "b": ["x", "x"]})
        assert table.n_distinct() == 3


class TestConversion:
    def test_copy_is_deep(self, movies):
        clone = movies.copy()
        clone.set(0, "title", "Alien")
        assert movies.get(0, "title") == "The Martian"
        assert movies.equals(movies.copy())

    def test_numeric_matrix_uses_nan(self, movies):
        matrix = movies.numeric_matrix()
        assert matrix.shape == (3, 1)
        assert np.isnan(matrix[1, 0])
        assert matrix[0, 0] == 2015.0

    def test_numeric_matrix_rejects_categorical(self, movies):
        with pytest.raises(ValueError):
            movies.numeric_matrix(["country"])

    def test_select_rows(self, movies):
        subset = movies.select_rows([2, 0])
        assert subset.n_rows == 2
        assert subset.get(0, "title") == "Amelie"

    def test_equals_detects_difference(self, movies):
        other = movies.copy()
        other.set(0, "year", 1900)
        assert not movies.equals(other)

    def test_to_rows_order(self, movies):
        rows = movies.to_rows()
        assert rows[0] == [2015.0, MISSING, "The Martian"]


class TestEncoders:
    def test_column_encoder_bijection(self, movies):
        encoder = ColumnEncoder.fit(movies, "title")
        assert encoder.cardinality == 2
        for value in movies.domain("title"):
            assert encoder.decode(encoder.encode(value)) == value

    def test_encode_or_default(self, movies):
        encoder = ColumnEncoder.fit(movies, "title")
        assert encoder.encode_or("Unknown Movie") == -1
        assert encoder.encode_or(MISSING) == -1

    def test_encode_column_vectorized(self, movies):
        encoder = ColumnEncoder.fit(movies, "country")
        codes = encoder.encode_column(movies.column("country"))
        assert codes.tolist() == [-1, 0, 0]

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ValueError):
            ColumnEncoder(["a", "a"])

    def test_table_encoder_covers_categoricals(self, movies):
        encoders = TableEncoder(movies)
        assert "country" in encoders and "title" in encoders
        assert "year" not in encoders
        assert encoders.cardinality("title") == 2


class TestNormalizer:
    def test_transform_zero_mean_unit_std(self):
        table = Table({"x": [1.0, 2.0, 3.0, 4.0], "c": ["a", "b", "a", "b"]})
        normalizer = NumericNormalizer()
        normalized = normalizer.fit_transform(table)
        values = np.array(list(normalized.column("x")), dtype=float)
        assert values.mean() == pytest.approx(0.0)
        assert values.std() == pytest.approx(1.0)

    def test_roundtrip(self):
        table = Table({"x": [10.0, MISSING, 30.0]})
        normalizer = NumericNormalizer().fit(table)
        back = normalizer.inverse_transform(normalizer.transform(table))
        assert back.equals(table)

    def test_constant_column_safe(self):
        table = Table({"x": [5.0, 5.0, 5.0]})
        normalized = NumericNormalizer().fit_transform(table)
        assert all(value == 0.0 for value in normalized.column("x"))

    def test_missing_cells_preserved(self):
        table = Table({"x": [1.0, MISSING]})
        normalized = NumericNormalizer().fit_transform(table)
        assert normalized.is_missing(1, "x")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NumericNormalizer().transform(Table({"x": [1.0]}))

    def test_inverse_value(self):
        table = Table({"x": [0.0, 10.0]})
        normalizer = NumericNormalizer().fit(table)
        assert normalizer.inverse_value("x", 0.0) == pytest.approx(5.0)

    def test_round_numeric_default_decimals(self):
        assert round_numeric(1.123456789123) == pytest.approx(1.12345679)


class TestCsv:
    def test_roundtrip(self, tmp_path, movies):
        path = tmp_path / "movies.csv"
        write_csv(movies, path)
        loaded = read_csv(path)
        assert loaded.equals(movies)

    def test_missing_round_trips_as_empty(self, tmp_path):
        table = Table({"a": ["x", MISSING], "n": [MISSING, 2.5]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.is_missing(1, "a")
        assert loaded.is_missing(0, "n")
        assert loaded.get(1, "n") == pytest.approx(2.5)

    def test_declared_categorical_keeps_strings(self, tmp_path):
        path = tmp_path / "codes.csv"
        path.write_text("zip\n07001\n10001\n")
        loaded = read_csv(path, kinds={"zip": "categorical"})
        assert loaded.get(0, "zip") == "07001"

    def test_declared_numerical_with_text_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x\nhello\n")
        with pytest.raises(ValueError):
            read_csv(path, kinds={"x": "numerical"})

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)
