"""Thread-safe live metrics for the imputation service.

Tracks request counts, end-to-end latency quantiles (over a bounded
window of recent requests, so memory stays constant under heavy
traffic), and the micro-batcher's batch-size histogram.  All updates
take one short lock; snapshots copy under the same lock and compute
percentiles outside it.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["ServingMetrics", "percentile"]

#: How many recent request latencies the quantile window keeps.
DEFAULT_WINDOW = 4096


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``samples`` by the
    nearest-rank method; 0.0 for an empty list."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class ServingMetrics:
    """Counters + latency window + batch-size histogram."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self._requests = 0
        self._errors = 0
        self._rows = 0
        self._batch_histogram: dict[int, int] = {}
        self._batches = 0

    # ------------------------------------------------------------------
    def record_request(self, latency_seconds: float, n_rows: int = 1,
                       ok: bool = True) -> None:
        """Record one client request and its end-to-end latency."""
        with self._lock:
            self._requests += 1
            if ok:
                self._rows += n_rows
                self._latencies.append(float(latency_seconds))
            else:
                self._errors += 1

    def record_batch(self, size: int) -> None:
        """Record one coalesced engine batch of ``size`` requests."""
        with self._lock:
            self._batches += 1
            self._batch_histogram[size] = \
                self._batch_histogram.get(size, 0) + 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time metrics dict (JSON-ready)."""
        with self._lock:
            latencies = list(self._latencies)
            histogram = dict(self._batch_histogram)
            requests, errors = self._requests, self._errors
            rows, batches = self._rows, self._batches
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        return {
            "requests": requests,
            "errors": errors,
            "rows_imputed": rows,
            "latency_ms": {
                "mean": mean * 1e3,
                "p50": percentile(latencies, 50) * 1e3,
                "p90": percentile(latencies, 90) * 1e3,
                "p99": percentile(latencies, 99) * 1e3,
                "window": len(latencies),
            },
            "batches": batches,
            "batch_size_histogram": {str(size): count for size, count
                                     in sorted(histogram.items())},
            "mean_batch_size": (sum(size * count for size, count
                                    in histogram.items()) / batches)
            if batches else 0.0,
        }
