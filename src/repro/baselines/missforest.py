"""MissForest [46] and its FD-aware FUNFOREST extension (§4.3).

MissForest iteratively refines an initial mode/mean fill: columns are
visited in order of increasing missingness; for each, a random forest is
trained on the rows where the column is observed (all other columns as
features, using their current imputed values) and predicts the missing
entries.  Iterations stop when the imputed values stop changing or
``max_iterations`` is reached.

FUNFOREST "points" part of the tree budget at the attributes involved in
functional dependencies with the target column, "reducing the noise
introduced by unrelated columns"; the paper found a 50/50 budget split
best.
"""

from __future__ import annotations

import numpy as np

from ..data import MISSING, Table
from ..fd import FunctionalDependency
from ..forest import RandomForest
from ..imputation import Imputer
from .featurize import encode_matrix
from .simple import ModeMeanImputer

__all__ = ["MissForestImputer", "FunForestImputer"]


class MissForestImputer(Imputer):
    """Iterative random-forest imputation for mixed-type tables."""

    NAME = "missforest"

    def __init__(self, n_trees: int = 10, max_depth: int = 8,
                 max_iterations: int = 3, tolerance: float = 1e-3,
                 seed: int = 0):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.n_iterations_ = 0

    def _focused_features(self, table: Table,
                          column_position: dict[str, int],
                          target: str) -> list[int] | None:
        """Feature whitelist for the target column (none in the base
        algorithm; FUNFOREST overrides)."""
        return None

    def _make_forest(self, task: str, focused: list[int] | None,
                     seed: int) -> RandomForest:
        return RandomForest(task=task, n_trees=self.n_trees,
                            max_depth=self.max_depth,
                            focused_features=focused,
                            focus_fraction=0.5 if focused else 0.0,
                            seed=seed)

    def impute(self, dirty: Table) -> Table:
        missing_mask = dirty.missing_mask()
        if not missing_mask.any():
            return dirty.copy()

        # Initial fill, then iterate to a fixed point.
        current = ModeMeanImputer().impute(dirty)
        matrix, encoders = encode_matrix(current)
        # Entirely-missing columns stay nan; replace with zeros so they
        # never break the feature matrix.
        matrix = np.nan_to_num(matrix, nan=0.0)

        columns = list(dirty.column_names)
        position = {column: index for index, column in enumerate(columns)}
        by_missingness = sorted(
            (column for column in columns if missing_mask[:, position[column]].any()),
            key=lambda column: missing_mask[:, position[column]].sum())

        rng = np.random.default_rng(self.seed)
        self.n_iterations_ = 0
        for iteration in range(self.max_iterations):
            previous = matrix.copy()
            for column in by_missingness:
                target_index = position[column]
                observed = ~missing_mask[:, target_index]
                if observed.sum() < 2 or (~observed).sum() == 0:
                    continue
                feature_indices = [index for index in range(len(columns))
                                   if index != target_index]
                focused = self._focused_features(dirty, position, column)
                if focused is not None:
                    # Re-map whitelist into the feature submatrix.
                    focused = [feature_indices.index(index)
                               for index in focused if index in feature_indices]
                    focused = focused or None
                x = matrix[:, feature_indices]
                task = "classification" if dirty.is_categorical(column) \
                    else "regression"
                y = matrix[observed, target_index]
                if task == "classification":
                    y = y.astype(np.int64)
                    if np.unique(y).size < 2:
                        continue  # a constant column: initial mode fill stands
                forest = self._make_forest(task, focused,
                                           seed=int(rng.integers(0, 2 ** 31)))
                forest.fit(x[observed], y)
                predictions = forest.predict(x[~observed])
                matrix[~observed, target_index] = predictions
            self.n_iterations_ = iteration + 1
            delta = np.abs(matrix - previous)
            scale = np.abs(previous) + 1e-9
            if (delta / scale).max() < self.tolerance:
                break

        return self._decode(dirty, matrix, encoders)

    def _decode(self, dirty: Table, matrix: np.ndarray, encoders) -> Table:
        imputed = dirty.copy()
        for position, column in enumerate(dirty.column_names):
            values = dirty.column(column)
            for row in range(dirty.n_rows):
                if values[row] is not MISSING:
                    continue
                raw = matrix[row, position]
                if dirty.is_categorical(column):
                    if column in encoders and encoders.cardinality(column):
                        code = int(np.clip(round(raw), 0,
                                           encoders.cardinality(column) - 1))
                        imputed.set(row, column, encoders[column].decode(code))
                else:
                    imputed.set(row, column, float(raw))
        return imputed


class FunForestImputer(MissForestImputer):
    """MissForest with part of the budget focused on FD attributes."""

    NAME = "funforest"

    def __init__(self, fds: tuple[FunctionalDependency, ...],
                 n_trees: int = 10, max_depth: int = 8,
                 max_iterations: int = 3, tolerance: float = 1e-3,
                 seed: int = 0):
        super().__init__(n_trees=n_trees, max_depth=max_depth,
                         max_iterations=max_iterations, tolerance=tolerance,
                         seed=seed)
        self.fds = tuple(fds)

    def _focused_features(self, table: Table,
                          column_position: dict[str, int],
                          target: str) -> list[int] | None:
        related: set[int] = set()
        for fd in self.fds:
            if target in fd.attributes:
                related.update(column_position[name]
                               for name in fd.attributes
                               if name != target and name in column_position)
        return sorted(related) if related else None
