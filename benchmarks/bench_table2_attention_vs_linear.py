"""Table 2: attention vs linear task heads (accuracy and time).

The paper's shape: attention yields slightly higher accuracy at every
error rate, while linear tasks train roughly an order of magnitude
faster (307s vs 26s at 5% in the paper).
"""

import numpy as np
import pytest

from repro.experiments import format_table2, run_grid
from conftest import save_artifact

DATASETS = ["adult", "flare", "mammogram", "credit", "contraceptive"]
ERROR_RATES = (0.05, 0.20, 0.50)


def _run():
    attention = run_grid(DATASETS, ["grimp-ft"], error_rates=ERROR_RATES,
                         n_rows=220, seed=0)
    linear = run_grid(DATASETS, ["grimp-linear"], error_rates=ERROR_RATES,
                      n_rows=220, seed=0)
    return attention, linear


@pytest.mark.benchmark(group="table2")
def test_table2_attention_vs_linear(benchmark):
    attention, linear = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_artifact("table2", format_table2(attention, linear))

    attention_accuracy = float(np.nanmean([r.accuracy for r in attention]))
    linear_accuracy = float(np.nanmean([r.accuracy for r in linear]))
    attention_seconds = float(np.mean([r.seconds for r in attention]))
    linear_seconds = float(np.mean([r.seconds for r in linear]))

    # Accuracy: the two heads are close (paper: 0.707 vs 0.700); neither
    # collapses.  We assert attention is within a small margin of linear
    # and both clear the trivial floor.
    assert attention_accuracy > linear_accuracy - 0.05
    assert attention_accuracy > 0.3 and linear_accuracy > 0.3

    # Time: linear tasks are decisively faster.
    assert linear_seconds < attention_seconds

    # Accuracy decreases with the error rate for both heads.
    for results in (attention, linear):
        low = np.nanmean([r.accuracy for r in results
                          if r.error_rate == 0.05])
        high = np.nanmean([r.accuracy for r in results
                           if r.error_rate == 0.50])
        assert low > high
