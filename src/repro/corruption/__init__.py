"""Error injection: MCAR/MAR/MNAR missingness, typo noise, and
wrong-value corruption."""

from .inject import Corruption, inject_mcar, inject_mar, inject_mnar, inject_typos
from .value_errors import inject_value_errors

__all__ = ["Corruption", "inject_mcar", "inject_mar", "inject_mnar",
           "inject_typos", "inject_value_errors"]
