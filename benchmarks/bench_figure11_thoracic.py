"""Figure 11: per-value wrong-imputation distribution on Thoracic.

Four binary (f/t) attributes where "f" dominates: every method imputes
the frequent value well and the rare value poorly, tracking the paper's
expected-error model E_v = 1 - f_v.
"""

import numpy as np
import pytest

from repro.corruption import inject_mcar
from repro.datasets import load
from repro.experiments import format_value_errors, make_imputer
from repro.metrics import per_value_errors
from conftest import save_artifact

COLUMNS = ["PRE7", "PRE8", "PRE9", "PRE10"]
ALGORITHMS = ["mode", "misf", "holo", "grimp-ft"]


def _run():
    clean = load("thoracic")  # full paper size: 470 rows
    corruption = inject_mcar(clean, 0.5, np.random.default_rng(1))
    imputed = {name: make_imputer(name, seed=0).impute(corruption.dirty)
               for name in ALGORITHMS}
    return corruption, imputed


@pytest.mark.benchmark(group="figure11")
def test_figure11_thoracic_value_errors(benchmark):
    corruption, imputed = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_value_errors(
        corruption, imputed, COLUMNS,
        title="Figure 11 — wrong-imputation fraction per value (Thoracic)")
    save_artifact("figure11", text)

    # Shape: for each binary attribute, every algorithm's error on the
    # rare value exceeds its error on the frequent value.
    for column in COLUMNS:
        for name, table in imputed.items():
            rows = per_value_errors(corruption, table, column)
            frequent, rare = rows[0], rows[-1]
            assert frequent.frequency > rare.frequency
            if np.isfinite(frequent.actual) and np.isfinite(rare.actual):
                assert rare.actual >= frequent.actual, (column, name)
