"""First-order optimizers for training the reproduction's models."""

from __future__ import annotations

import numpy as np

from ..tensor.arena import WORKSPACE as _WORKSPACE
from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Reset gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses must override."""
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most
        ``max_norm``; returns the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            grad = parameter.grad
            if grad is None:
                continue
            # The squared temporary is deliberately not pooled: squaring
            # into an epoch-cold rented buffer measured slower than the
            # allocating expression, whose memory was freed (and is
            # still cache-warm) moments earlier.
            total += float(np.sum(grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the workhorse for GRIMP training."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def get_state(self) -> dict:
        """Copy of the optimizer state (step clock + moment estimates).

        Moments are listed in :meth:`Optimizer.parameters` order, which
        is how data-parallel training ships them to shard workers whose
        own optimizers were built over the same parameter ordering.
        """
        return {
            "step_count": int(self._step_count),
            "first_moment": [moment.copy()
                             for moment in self._first_moment],
            "second_moment": [moment.copy()
                              for moment in self._second_moment],
        }

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state` (in place).

        Writes into the existing moment arrays, so aliases held by
        callers stay valid; shape mismatches (a different parameter
        set) raise instead of silently corrupting the update.
        """
        first = state["first_moment"]
        second = state["second_moment"]
        if len(first) != len(self.parameters) or \
                len(second) != len(self.parameters):
            raise ValueError(
                f"optimizer state covers {len(first)}/{len(second)} "
                f"parameters, expected {len(self.parameters)}")
        for target, source in zip(self._first_moment, first):
            if target.shape != source.shape:
                raise ValueError(f"first-moment shape mismatch: "
                                 f"{target.shape} vs {source.shape}")
            target[...] = source
        for target, source in zip(self._second_moment, second):
            if target.shape != source.shape:
                raise ValueError(f"second-moment shape mismatch: "
                                 f"{target.shape} vs {source.shape}")
            target[...] = source
        self._step_count = int(state["step_count"])

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        # Scale factors are folded into as few full-array passes as
        # possible; the update allocates two temporaries instead of six.
        step_scale = self.lr / correction1
        denom_scale = 1.0 / np.sqrt(correction2)
        workspace = _WORKSPACE.active
        for parameter, m, v in zip(self.parameters, self._first_moment,
                                   self._second_moment):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if workspace is not None and grad.dtype == m.dtype and \
                    grad.shape == m.shape:
                # The whole update runs through one pooled scratch
                # buffer, reused sequentially; every ufunc matches the
                # allocating path below bit-for-bit.
                scratch = workspace.rent(grad.shape, grad.dtype)
                np.multiply(grad, 1.0 - self.beta1, out=scratch)
                m *= self.beta1
                m += scratch
                np.square(grad, out=scratch)
                scratch *= 1.0 - self.beta2
                v *= self.beta2
                v += scratch
                np.sqrt(v, out=scratch)
                scratch *= denom_scale
                scratch += self.eps
                np.divide(m, scratch, out=scratch)
                scratch *= step_scale
                parameter.data -= scratch
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            denominator = np.sqrt(v)
            denominator *= denom_scale
            denominator += self.eps
            update = np.divide(m, denominator, out=denominator)
            update *= step_scale
            parameter.data -= update
