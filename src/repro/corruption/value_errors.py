"""Wrong-value corruption: cells changed to *incorrect* values.

The paper's §2 treats imputation as covering "missing or *erroneous*
values" where an error-detection step marks the bad cells.  This module
produces the erroneous-but-present corruption that exercises the
detect-then-repair pipeline: categorical cells are swapped to a
different in-domain value, numerical cells are scaled by a gross factor
(outliers), and ground truth is tracked exactly like
:class:`~repro.corruption.Corruption`.
"""

from __future__ import annotations

import numpy as np

from ..data import MISSING, Table
from .inject import Corruption

__all__ = ["inject_value_errors"]


def inject_value_errors(table: Table, fraction: float,
                        rng: np.random.Generator,
                        outlier_factor: float = 100.0) -> Corruption:
    """Replace a ``fraction`` of cells with wrong values.

    Categorical cells get a different value sampled from the column's
    domain (columns with a single value are skipped — there is no wrong
    in-domain value); numerical cells are multiplied by
    ``outlier_factor``.  The returned :class:`Corruption`'s ``injected``
    lists exactly the mutated cells, and ``dirty`` contains the wrong
    values (not blanks) — pass it through an error detector before
    imputing.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if outlier_factor == 1.0:
        raise ValueError("outlier_factor must change the value")
    clean = table.copy()
    dirty = table.copy()

    domains = {column: table.domain(column)
               for column in table.categorical_columns}
    eligible: list[tuple[int, str]] = []
    for column in table.column_names:
        if table.is_categorical(column) and len(domains[column]) < 2:
            continue
        values = table.column(column)
        eligible.extend((row, column) for row in range(table.n_rows)
                        if values[row] is not MISSING)

    n_corrupt = int(round(fraction * len(eligible)))
    chosen = rng.choice(len(eligible), size=n_corrupt, replace=False) \
        if n_corrupt else np.array([], dtype=np.int64)
    injected = [eligible[position] for position in chosen]
    for row, column in injected:
        current = dirty.get(row, column)
        if dirty.is_categorical(column):
            alternatives = [value for value in domains[column]
                            if value != current]
            dirty.set(row, column,
                      alternatives[int(rng.integers(0, len(alternatives)))])
        else:
            dirty.set(row, column, float(current) * outlier_factor)
    return Corruption(dirty=dirty, clean=clean, injected=injected)
