"""CART decision trees (classification and regression) in numpy.

Substrate for the MissForest baseline [46]: trees split on numeric
thresholds (categorical features are label-encoded by the caller, the
standard trick MissForest itself uses), with Gini impurity for
classification and variance reduction for regression.  Split search is
vectorized over candidate thresholds via cumulative statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: float = 0.0
    is_leaf: bool = False


class DecisionTree:
    """A CART tree.

    Parameters
    ----------
    task:
        ``"classification"`` (integer labels, Gini) or ``"regression"``
        (float targets, variance).
    max_depth, min_samples_leaf:
        Usual stopping criteria.
    max_features:
        Features examined per split: ``None`` (all), ``"sqrt"``, or an
        int count — randomized per split when fewer than all.
    max_thresholds:
        Cap on candidate thresholds per feature (quantile subsampling)
        to keep split search near-linear.
    """

    def __init__(self, task: str = "classification", max_depth: int = 10,
                 min_samples_leaf: int = 1,
                 max_features: int | str | None = None,
                 max_thresholds: int = 32, seed: int = 0):
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        self.task = task
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self._rng = np.random.default_rng(seed)
        self._root: _Node | None = None
        self.n_classes_: int = 0

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTree":
        """Grow the tree on feature matrix ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=float)
        if self.task == "classification":
            y = np.asarray(y, dtype=np.int64)
            if y.size and y.min() < 0:
                raise ValueError("classification labels must be >= 0")
            self.n_classes_ = int(y.max()) + 1 if y.size else 1
        else:
            y = np.asarray(y, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y disagree on sample count")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._root = self._grow(x, y, depth=0)
        return self

    def _n_features_per_split(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return max(1, min(int(self.max_features), n_features))

    def _leaf(self, y: np.ndarray) -> _Node:
        if self.task == "classification":
            counts = np.bincount(y, minlength=self.n_classes_)
            prediction = float(counts.argmax())
        else:
            prediction = float(y.mean())
        return _Node(prediction=prediction, is_leaf=True)

    def _impurity_gain(self, feature_values: np.ndarray, y: np.ndarray,
                       thresholds: np.ndarray) -> np.ndarray:
        """Impurity decrease for each candidate threshold (vectorized)."""
        order = np.argsort(feature_values, kind="stable")
        sorted_values = feature_values[order]
        sorted_y = y[order]
        n = y.shape[0]
        # Position of each threshold: left side gets values <= threshold.
        left_counts = np.searchsorted(sorted_values, thresholds, side="right")
        valid = (left_counts >= self.min_samples_leaf) & \
                (n - left_counts >= self.min_samples_leaf)
        gains = np.full(thresholds.shape[0], -np.inf)
        if not valid.any():
            return gains
        if self.task == "classification":
            one_hot = np.zeros((n, self.n_classes_))
            one_hot[np.arange(n), sorted_y] = 1.0
            prefix = np.vstack([np.zeros((1, self.n_classes_)),
                                np.cumsum(one_hot, axis=0)])
            total = prefix[-1]

            def gini(counts, size):
                with np.errstate(invalid="ignore", divide="ignore"):
                    probabilities = counts / size[:, None]
                return 1.0 - np.nansum(probabilities ** 2, axis=1)

            left = prefix[left_counts]
            right = total[None, :] - left
            sizes_left = left_counts.astype(float)
            sizes_right = (n - left_counts).astype(float)
            parent = gini(total[None, :], np.array([float(n)]))[0]
            children = (sizes_left * gini(left, sizes_left) +
                        sizes_right * gini(right, sizes_right)) / n
            gains[valid] = (parent - children)[valid]
        else:
            prefix = np.concatenate([[0.0], np.cumsum(sorted_y)])
            prefix_sq = np.concatenate([[0.0], np.cumsum(sorted_y ** 2)])
            sizes_left = left_counts.astype(float)
            sizes_right = (n - left_counts).astype(float)
            with np.errstate(invalid="ignore", divide="ignore"):
                var_left = prefix_sq[left_counts] / sizes_left - \
                    (prefix[left_counts] / sizes_left) ** 2
                var_right = (prefix_sq[-1] - prefix_sq[left_counts]) / \
                    sizes_right - ((prefix[-1] - prefix[left_counts]) /
                                   sizes_right) ** 2
            parent = float(sorted_y.var())
            children = (sizes_left * np.nan_to_num(var_left) +
                        sizes_right * np.nan_to_num(var_right)) / n
            gains[valid] = (parent - children)[valid]
        return gains

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n, n_features = x.shape
        pure = (np.unique(y).size == 1)
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf or pure:
            return self._leaf(y)

        k = self._n_features_per_split(n_features)
        features = self._rng.choice(n_features, size=k, replace=False) \
            if k < n_features else np.arange(n_features)

        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for feature in features:
            values = x[:, feature]
            unique = np.unique(values)
            if unique.size < 2:
                continue
            midpoints = (unique[:-1] + unique[1:]) / 2.0
            if midpoints.size > self.max_thresholds:
                positions = np.linspace(0, midpoints.size - 1,
                                        self.max_thresholds).astype(int)
                midpoints = midpoints[positions]
            gains = self._impurity_gain(values, y, midpoints)
            index = int(np.argmax(gains))
            if gains[index] > best_gain + 1e-12:
                best_gain = float(gains[index])
                best_feature = int(feature)
                best_threshold = float(midpoints[index])

        if best_feature < 0:
            return self._leaf(y)
        mask = x[:, best_feature] <= best_threshold
        node = _Node(feature=best_feature, threshold=best_threshold)
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict labels (classification) or values (regression)."""
        if self._root is None:
            raise RuntimeError("tree must be fitted before predicting")
        x = np.asarray(x, dtype=float)
        out = np.empty(x.shape[0])
        for position, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[position] = node.prediction
        if self.task == "classification":
            return out.astype(np.int64)
        return out

    def depth(self) -> int:
        """Actual depth of the grown tree (0 for a single leaf)."""
        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("tree must be fitted first")
        return walk(self._root)
