"""Declarative true/false-positive fixtures for every lint rule.

One table, ``FIXTURES``, drives the whole file: each registered rule
must prove at least one *true positive* (the rule fires) and one
*false positive* (the sanctioned pattern stays silent).  The sync
tests at the bottom hold the registry, this table, the docs catalog,
and the README to the same rule list — adding a rule without fixtures
or docs fails CI, exactly like ``test_ci_gate.py`` holds the workflow
and Makefile together.

A fixture is either ``(module, source)`` — linted as one file — or a
``{path: source}`` dict linted as a multi-file project through
:func:`repro.analysis.lint_sources` (the interprocedural rules need
taint to cross module boundaries).
"""

from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_source, lint_sources

REPO_ROOT = Path(__file__).resolve().parent.parent

FIXTURES = {
    "RPR001": {
        "true": [
            ("repro.tensor.x", "x = np.float64(3.0)\n"),
            ("repro.nn.x", "a = np.zeros((2, 3))\n"),
        ],
        "false": [
            ("repro.tensor.x",
             "a = np.zeros((2, 3), dtype=get_default_dtype())\n"),
            ("repro.serve.x", "x = np.float64(3.0)\n"),  # out of scope
        ],
    },
    "RPR002": {
        "true": [
            ("repro.core.x", "y = Tensor(x.data)\n"),
            ("repro.core.x", "y = Tensor.ensure(x.data)\n"),
        ],
        "false": [
            ("repro.core.x", "y = Tensor(array, requires_grad=True)\n"),
            ("repro.core.x", "w = x.detach()\n"),
        ],
    },
    "RPR003": {
        "true": [
            ("repro.tensor.x", "with tracer.span('op'):\n    pass\n"),
            ("repro.gnn.x", "_OPS.record(op)\n"),
        ],
        "false": [
            ("repro.tensor.x",
             "if _OPS.enabled:\n    _OPS.record(op)\n"),
            ("repro.nn.x", "with detail_span('layer'):\n    pass\n"),
        ],
    },
    "RPR004": {
        "true": [
            ("repro.graph.x", "import threading\n"),
            ("repro.sampling.x", "import multiprocessing\n"),
        ],
        "false": [
            ("repro.serve.batcher", "import threading\n"),
            ("repro.parallel.x", "import multiprocessing\n"),
        ],
    },
    "RPR005": {
        "true": [
            ("repro.core.x", "rng = np.random.default_rng()\n"),
            ("repro.sampling.x", "x = np.random.randn(3)\n"),
        ],
        "false": [
            ("repro.core.x", "rng = np.random.default_rng(seed)\n"),
            ("repro.telemetry.x", "t = time.time()\n"),  # out of scope
        ],
    },
    "RPR006": {
        "true": [
            ("repro.datasets", "try:\n    run()\nexcept:\n    pass\n"),
        ],
        "false": [
            ("repro.datasets",
             "try:\n    run()\nexcept ValueError:\n    pass\n"),
        ],
    },
    "RPR007": {
        # Thread primitives created in code that runs inside a forked
        # worker (reachable from a worker entry point).
        "true": [
            ("repro.gnn.x",
             "import threading\n"
             "from repro.parallel import parallel_map\n"
             "def shard_fn(task, views):\n"
             "    lock = threading.Lock()\n"
             "    return task\n"
             "def run(tasks):\n"
             "    return parallel_map(shard_fn, tasks, shared={})\n"),
            # Reachability crosses module boundaries.
            {"repro/distributed/a.py":
                "from repro.parallel import ShardPool\n"
                "from repro.distributed.b import shard_fn\n"
                "def run(shared):\n"
                "    pool = ShardPool(shard_fn, workers=2,"
                " shared=shared)\n"
                "    pool.close()\n",
             "repro/distributed/b.py":
                "import threading\n"
                "from repro.distributed.c import helper\n"
                "def shard_fn(task, views):\n"
                "    return helper(task)\n",
             "repro/distributed/c.py":
                "import threading\n"
                "def helper(task):\n"
                "    event = threading.Event()\n"
                "    return task\n"},
        ],
        "false": [
            # Sanctioned owner: the serve worker loop's feeder threads
            # are the audited design even though worker_main runs in a
            # forked child.
            {"repro/serve/dispatch.py":
                "from repro.parallel import start_worker\n"
                "from repro.serve.workers import worker_main\n"
                "def launch(spec):\n"
                "    return start_worker(worker_main, spec)\n",
             "repro/serve/workers.py":
                "import threading\n"
                "def worker_main(spec):\n"
                "    lock = threading.Lock()\n"
                "    return spec\n"},
            # Not reachable from any worker entry -> parent-side code.
            ("repro.gnn.x",
             "import threading\n"
             "def parent_side():\n"
             "    return threading.Lock()\n"),
        ],
    },
    "RPR008": {
        # Writes into arrays that alias a shared-memory segment.
        "true": [
            ("repro.core.x",
             "from repro.parallel import attach_shared\n"
             "def worker(specs):\n"
             "    views = attach_shared(specs)\n"
             "    views['x'][0] = 1.0\n"),
            # The shared views parameter of a registered worker,
            # mutated two calls deep in another module.
            {"repro/distributed/a.py":
                "from repro.parallel import parallel_map\n"
                "from repro.distributed.b import mutate\n"
                "def shard(task, views):\n"
                "    mutate(views)\n"
                "def run(tasks):\n"
                "    parallel_map(shard, tasks, shared={})\n",
             "repro/distributed/b.py":
                "def mutate(views):\n"
                "    views['x'][:] = 0\n"},
        ],
        "false": [
            # Materializing first is the sanctioned pattern.
            ("repro.core.x",
             "from repro.parallel import attach_shared\n"
             "def worker(specs):\n"
             "    views = attach_shared(specs)\n"
             "    mine = views['x'].copy()\n"
             "    mine[0] = 1.0\n"),
            ("repro.core.x",
             "import numpy as np\n"
             "from repro.parallel import attach_shared\n"
             "def worker(specs):\n"
             "    views = attach_shared(specs)\n"
             "    fresh = np.array(views['x'])\n"
             "    fresh.sort()\n"),
        ],
    },
    "RPR009": {
        # Seeded RNG whose seed has no provenance from the seed tree.
        "true": [
            ("repro.sampling.x",
             "import os\n"
             "import numpy as np\n"
             "def make():\n"
             "    return np.random.default_rng(os.getpid())\n"),
            ("repro.distributed.x",
             "import numpy as np\n"
             "def make(payload):\n"
             "    return np.random.default_rng(payload)\n"),
        ],
        "false": [
            # spawn_seeds children are the sanctioned derivation.
            ("repro.sampling.x",
             "import numpy as np\n"
             "from repro.parallel import spawn_seeds\n"
             "def make(rng):\n"
             "    children = spawn_seeds(rng, 4)\n"
             "    return [np.random.default_rng(child)"
             " for child in children]\n"),
            # An explicit constant seed is a config seed.
            ("repro.sampling.x",
             "import numpy as np\n"
             "rng = np.random.default_rng(1234)\n"),
            # A seed-named parameter is visibly threaded provenance.
            ("repro.distributed.x",
             "import numpy as np\n"
             "def make(seed):\n"
             "    return np.random.default_rng(seed)\n"),
        ],
    },
    "RPR010": {
        # Process resources with no disposal or ownership transfer.
        "true": [
            ("repro.core.x",
             "from repro.parallel import SharedArrays\n"
             "def run(arrays):\n"
             "    pack = SharedArrays(arrays)\n"
             "    return 1\n"),
            ("repro.serve.x",
             "import multiprocessing\n"
             "def run(n):\n"
             "    pool = multiprocessing.Pool(n)\n"
             "    return n\n"),
        ],
        "false": [
            # with-managed.
            ("repro.core.x",
             "from repro.parallel import SharedArrays\n"
             "def run(arrays):\n"
             "    with SharedArrays(arrays) as pack:\n"
             "        return pack.specs\n"),
            # try/finally disposal.
            ("repro.core.x",
             "from repro.parallel import SharedArrays\n"
             "def run(arrays):\n"
             "    pack = SharedArrays(arrays)\n"
             "    try:\n"
             "        return 1\n"
             "    finally:\n"
             "        pack.close()\n"),
            # Ownership transfer: returned / stored on an object.
            ("repro.core.x",
             "from repro.parallel import SharedArrays\n"
             "def make(arrays):\n"
             "    return SharedArrays(arrays)\n"),
            ("repro.core.x",
             "from repro.parallel import SharedArrays\n"
             "class Holder:\n"
             "    def __init__(self, arrays):\n"
             "        self._pack = SharedArrays(arrays)\n"),
        ],
    },
    "RPR011": {
        # Backward closures allocating instead of renting workspace
        # scratch (repro.tensor.arena).
        "true": [
            ("repro.tensor.x",
             "def mul(self, other):\n"
             "    def backward(grad):\n"
             "        out = np.empty_like(grad)\n"
             "        np.multiply(grad, other, out=out)\n"
             "        return out\n"
             "    return backward\n"),
            ("repro.gnn.x",
             "def gather(index, shape, dtype):\n"
             "    def backward(grad):\n"
             "        full = np.zeros(shape, dtype=dtype)\n"
             "        np.add.at(full, index, grad)\n"
             "        return full\n"
             "    return backward\n"),
        ],
        "false": [
            # Renting through the arena helper is the sanctioned path.
            ("repro.tensor.x",
             "def mul(self, other):\n"
             "    def backward(grad):\n"
             "        out = _scratch(grad.shape, grad.dtype)\n"
             "        np.multiply(grad, other, out=out)\n"
             "        return out\n"
             "    return backward\n"),
            # Renting directly from the active workspace also counts.
            ("repro.nn.x",
             "def step(shape, dtype):\n"
             "    def backward(grad):\n"
             "        out = WORKSPACE.active.rent(shape, dtype)\n"
             "        np.copyto(out, grad)\n"
             "        return out\n"
             "    return backward\n"),
            # Tensor.backward (a method) is the entry point, not a
            # per-op closure.
            ("repro.tensor.x",
             "class Tensor:\n"
             "    def backward(self, grad=None):\n"
             "        seed = np.ones(self.shape, dtype=self.dtype)\n"
             "        return seed\n"),
            # Out of scope: non-hot packages allocate freely.
            ("repro.serve.x",
             "def op():\n"
             "    def backward(grad):\n"
             "        return np.empty_like(grad)\n"
             "    return backward\n"),
        ],
    },
}


def lint_fixture(fixture, rules=None):
    if isinstance(fixture, dict):
        return lint_sources(fixture, rules=rules)
    module, source = fixture
    return lint_source(source, module=module,
                       path=module.replace(".", "/") + ".py",
                       rules=rules)


def fixture_cases(kind):
    for code, table in sorted(FIXTURES.items()):
        for index, fixture in enumerate(table[kind]):
            yield pytest.param(code, fixture, id=f"{code}-{kind}{index}")


class TestTruePositives:
    @pytest.mark.parametrize("code,fixture", fixture_cases("true"))
    def test_rule_fires(self, code, fixture):
        findings = lint_fixture(fixture)
        assert code in {finding.rule for finding in findings}, \
            f"{code} did not fire on its true-positive fixture"

    @pytest.mark.parametrize("code,fixture", fixture_cases("true"))
    def test_rule_fires_in_isolation(self, code, fixture):
        """The finding must come from the rule itself, not a neighbor
        (running only this rule still flags the fixture)."""
        findings = lint_fixture(fixture, rules=[code])
        assert {finding.rule for finding in findings} == {code}


class TestFalsePositives:
    @pytest.mark.parametrize("code,fixture", fixture_cases("false"))
    def test_rule_stays_silent(self, code, fixture):
        findings = lint_fixture(fixture, rules=[code])
        assert findings == [], \
            f"{code} false-positive fixture was flagged: {findings}"


class TestRuleSync:
    """Registry, fixture table, docs catalog, and README stay in step."""

    def test_every_rule_has_fixtures(self):
        registered = sorted(all_rules())
        assert sorted(FIXTURES) == registered
        for code, table in FIXTURES.items():
            assert table["true"], f"{code} has no true-positive fixture"
            assert table["false"], f"{code} has no false-positive fixture"

    def test_every_rule_documented_in_catalog(self):
        catalog = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
        for code in all_rules():
            assert f"**{code}" in catalog, \
                f"{code} missing from docs/static-analysis.md catalog"

    def test_every_rule_listed_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for code in all_rules():
            assert code in readme, f"{code} missing from README.md"

    def test_rules_carry_rationale_and_title(self):
        for code, rule in all_rules().items():
            assert rule.title, f"{code} has no title"
            assert rule.rationale, f"{code} has no rationale"
            assert rule.severity in ("error", "warning")
