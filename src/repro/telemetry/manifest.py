"""Schema-versioned run manifests — the machine-checkable face of a run.

A manifest is a compact JSON summary of one traced run: aggregated span
totals, counter snapshots, and a flat ``metrics`` map of headline
numbers (epoch seconds, speedups, accuracy).  Benchmarks emit one next
to their ``BENCH_*.json``; ``scripts/check_bench_regression.py`` (the
CI gate) compares a fresh manifest's metrics against a committed
baseline with tolerance bands, which is how perf regressions fail the
build instead of rotting silently.

The ``schema`` field is a versioned tag; loaders reject unknown
schemas so a future format change cannot be silently misread.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from .registry import TENSOR_OPS, get_registry
from .tracer import Tracer

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "validate_manifest",
           "write_manifest", "load_manifest"]

#: Current manifest schema tag.  Bump the suffix on breaking changes.
MANIFEST_SCHEMA = "repro.run-manifest/1"

#: Fields every manifest must carry (schema v1).
_REQUIRED = ("schema", "created_unix", "python", "run", "spans",
             "counters", "metrics")


def build_manifest(run: dict, tracer: Tracer | None = None,
                   metrics: dict[str, float] | None = None,
                   include_registry: bool = True) -> dict:
    """Assemble a manifest dict for one run.

    Parameters
    ----------
    run:
        Free-form identification of what ran (``kind``, dataset,
        profile, seed, ...).  ``kind`` is conventionally required by
        downstream tooling.
    tracer:
        Aggregated span totals are taken from it when given.
    metrics:
        Flat ``{dotted.name: number}`` headline metrics — the part the
        CI regression gate ranges over.
    include_registry:
        Snapshot the process-wide counter registry and tensor-op
        counters into ``counters``.
    """
    counters: dict = {}
    if include_registry:
        counters = dict(get_registry().snapshot())
        ops = TENSOR_OPS.snapshot()
        if ops["total_ops"]:
            counters["tensor.total_ops"] = ops["total_ops"]
            counters["tensor.total_bytes"] = ops["total_bytes"]
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "run": dict(run),
        "spans": tracer.aggregate() if tracer is not None else {},
        "counters": counters,
        "metrics": dict(metrics or {}),
    }
    validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: dict) -> dict:
    """Check schema tag and required fields; returns the manifest."""
    if not isinstance(manifest, dict):
        raise ValueError("manifest must be a JSON object")
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ValueError(f"unsupported manifest schema {schema!r} "
                         f"(expected {MANIFEST_SCHEMA!r})")
    missing = [field for field in _REQUIRED if field not in manifest]
    if missing:
        raise ValueError(f"manifest missing fields: {missing}")
    for field in ("run", "spans", "counters", "metrics"):
        if not isinstance(manifest[field], dict):
            raise ValueError(f"manifest field {field!r} must be an object")
    for name, value in manifest["metrics"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"metric {name!r} must be a number, "
                             f"got {value!r}")
    return manifest


def write_manifest(manifest: dict, path) -> Path:
    """Validate and write a manifest as pretty-printed JSON."""
    validate_manifest(manifest)
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path) -> dict:
    """Read and validate a manifest file."""
    try:
        manifest = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not JSON: {error}") from None
    return validate_manifest(manifest)
