"""Ablation: node-feature initialization strategies (§3.4).

GRIMP-FT (FastText-like subword hashing) vs GRIMP-E (EmbDI walks +
skip-gram) vs random initialization.  The paper finds "neither of the
two pre-trained features clearly surpass[es] the other in all settings"
while "both solutions slightly outperform the random initialization" —
we assert the pre-trained average beats random.
"""

import numpy as np
import pytest

from repro.core import GrimpConfig, GrimpImputer
from repro.corruption import inject_mcar
from repro.datasets import load
from repro.metrics import evaluate_imputation
from conftest import save_artifact

DATASETS = ("flare", "mammogram", "contraceptive")
STRATEGIES = ("fasttext", "embdi", "random")


def _run():
    rows = []
    for dataset in DATASETS:
        clean = load(dataset, n_rows=260, seed=0)
        corruption = inject_mcar(clean, 0.2, np.random.default_rng(1))
        for strategy in STRATEGIES:
            config = GrimpConfig(
                feature_dim=16, gnn_dim=24, merge_dim=32, epochs=60,
                patience=8, lr=1e-2, feature_strategy=strategy, seed=0,
                embdi_kwargs={"epochs": 2, "walks_per_node": 3}
                if strategy == "embdi" else {})
            imputer = GrimpImputer(config)
            score = evaluate_imputation(corruption,
                                        imputer.impute(corruption.dirty))
            rows.append((dataset, strategy, score.accuracy))
    return rows


@pytest.mark.benchmark(group="ablation-features")
def test_feature_strategy_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["Feature-initialization ablation",
             f"{'dataset':<16}{'strategy':<12}{'accuracy':>10}"]
    for dataset, strategy, accuracy in rows:
        lines.append(f"{dataset:<16}{strategy:<12}{accuracy:>10.3f}")
    save_artifact("ablation_features", "\n".join(lines))

    def mean(strategy):
        return float(np.mean([accuracy for _, s, accuracy in rows
                              if s == strategy]))

    pretrained = max(mean("fasttext"), mean("embdi"))
    assert pretrained >= mean("random") - 0.02
