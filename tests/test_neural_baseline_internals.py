"""White-box tests for the neural baselines' internal mechanisms."""

import numpy as np
import pytest

from repro.data import MISSING, Table
from repro.baselines.aimnet import _AimNetModel
from repro.baselines.turl_like import _RowTransformer
from repro.baselines.neural_common import encode_for_neural
from repro.tensor import Tensor


@pytest.fixture
def encoded():
    table = Table({
        "city": ["paris", "rome", MISSING, "paris"],
        "country": ["france", MISSING, "france", "france"],
        "pop": [2.1, 2.8, MISSING, 2.2],
    })
    return encode_for_neural(table)


class TestAimNetInternals:
    def test_missing_cells_embed_to_zero(self, encoded):
        model = _AimNetModel(encoded, dim=8, rng=np.random.default_rng(0))
        rows = np.array([2])
        vectors = model.column_embedding(encoded, "city", rows)
        assert np.allclose(vectors.data, 0.0)
        observed = model.column_embedding(encoded, "city", np.array([0]))
        assert not np.allclose(observed.data, 0.0)

    def test_attention_ignores_missing_context(self, encoded):
        model = _AimNetModel(encoded, dim=8, rng=np.random.default_rng(0))
        # Predict "city" for row 1 (country missing there): attention
        # over [country, pop] must put ~all mass on pop.
        from repro.tensor import softmax
        rows = np.array([1])
        context_columns = ["country", "pop"]
        from repro.tensor import stack
        vectors = stack([model.column_embedding(encoded, column, rows)
                         for column in context_columns], axis=1)
        presence = np.stack([encoded.observed[column][rows]
                             for column in context_columns], axis=1)
        query = model.queries["city"]
        scores = (vectors * query.reshape(1, 1, 8)).sum(axis=2)
        scores = scores + Tensor(np.where(presence, 0.0, -1e9))
        weights = softmax(scores, axis=1).data
        assert weights[0, 0] < 1e-6      # missing country
        assert weights[0, 1] == pytest.approx(1.0)

    def test_prediction_shapes(self, encoded):
        model = _AimNetModel(encoded, dim=8, rng=np.random.default_rng(0))
        rows = np.array([0, 1, 3])
        assert model.predict(encoded, "city", rows).shape == (3, 2)
        assert model.predict(encoded, "pop", rows).shape == (3, 1)


class TestTurlInternals:
    def test_mask_token_is_last_embedding_row(self, encoded):
        model = _RowTransformer(encoded, dim=8,
                                rng=np.random.default_rng(0))
        for column in model.categorical_columns:
            assert model.mask_token(column) == \
                model.cell_embeddings[column].num_embeddings - 1

    def test_masked_column_uses_mask_token_everywhere(self, encoded):
        model = _RowTransformer(encoded, dim=8,
                                rng=np.random.default_rng(0))
        rows = np.arange(4)
        with_mask = model.encode_rows(encoded, rows, masked_column="city")
        without = model.encode_rows(encoded, rows, masked_column=None)
        position = model.categorical_columns.index("city")
        # Rows where city is observed get different representations
        # once the column is masked.
        assert not np.allclose(with_mask.data[0, position],
                               without.data[0, position])

    def test_logits_shape_matches_domain(self, encoded):
        model = _RowTransformer(encoded, dim=8,
                                rng=np.random.default_rng(0))
        logits = model.logits_for(encoded, "city", np.array([0, 1]))
        assert logits.shape == (2, encoded.cardinality("city"))

    def test_attention_is_row_local(self, encoded):
        # Changing row 3's cells must not affect row 0's representation.
        model = _RowTransformer(encoded, dim=8,
                                rng=np.random.default_rng(0))
        base = model.encode_rows(encoded, np.array([0, 3]), None).data[0]
        table2 = encoded.table.copy()
        table2.set(3, "city", "rome")
        encoded2 = encode_for_neural(table2)
        changed = model.encode_rows(encoded2, np.array([0, 3]), None).data[0]
        assert np.allclose(base, changed)
