"""Link-prediction baseline (§4.1): impute by scoring (tuple, value) edges.

The paper built this baseline and dropped it from the plots "because of
sub-par results ... the graph topology is not rich enough".  We include
it for completeness: node embeddings are trained so observed tuple-value
edges score high under a sigmoid dot product (BCE against in-column
negative samples), and a missing cell is imputed with the domain value
whose edge scores highest.
"""

from __future__ import annotations

import numpy as np

from ..data import MISSING, Table
from ..graph import build_table_graph
from ..imputation import Imputer
from ..nn import Adam, Embedding
from ..tensor import Tensor, binary_cross_entropy, no_grad

__all__ = ["LinkPredictionImputer"]


class LinkPredictionImputer(Imputer):
    """Dot-product edge scorer over learned node embeddings."""

    NAME = "link-pred"

    def __init__(self, dim: int = 16, epochs: int = 40, lr: float = 0.02,
                 negatives: int = 3, seed: int = 0):
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.negatives = negatives
        self.seed = seed

    def impute(self, dirty: Table) -> Table:
        imputed = dirty.copy()
        missing = dirty.missing_cells()
        if not missing:
            return imputed
        table_graph = build_table_graph(dirty)
        graph = table_graph.graph
        rng = np.random.default_rng(self.seed)

        positives: list[tuple[int, int, str]] = []
        for column in graph.edge_types:
            for u, v in graph.edges(column):
                positives.append((u, v, column))
        if not positives:
            return imputed

        column_nodes = {column: list(
            table_graph.column_cell_nodes(column).values())
            for column in dirty.column_names}

        embeddings = Embedding(graph.n_nodes, self.dim, rng=rng)
        optimizer = Adam(embeddings.parameters(), lr=self.lr)

        u_pos = np.array([edge[0] for edge in positives], dtype=np.int64)
        v_pos = np.array([edge[1] for edge in positives], dtype=np.int64)
        for _ in range(self.epochs):
            # Fresh in-column negatives per epoch.
            u_all = [u_pos]
            v_all = [v_pos]
            labels = [np.ones(u_pos.size)]
            for _ in range(self.negatives):
                negative_v = np.array([
                    column_nodes[column][rng.integers(
                        0, len(column_nodes[column]))]
                    for _, _, column in positives], dtype=np.int64)
                u_all.append(u_pos)
                v_all.append(negative_v)
                labels.append(np.zeros(u_pos.size))
            u = np.concatenate(u_all)
            v = np.concatenate(v_all)
            y = np.concatenate(labels)

            optimizer.zero_grad()
            scores = (embeddings(u) * embeddings(v)).sum(axis=1).sigmoid()
            loss = binary_cross_entropy(scores, y)
            loss.backward()
            optimizer.step()

        with no_grad():
            vectors = embeddings.weight.data
            for row, column in missing:
                candidates = column_nodes.get(column, [])
                if not candidates:
                    continue
                rid_vector = vectors[table_graph.rid_nodes[row]]
                scores = vectors[np.array(candidates)] @ rid_vector
                best = candidates[int(np.argmax(scores))]
                imputed.set(row, column, table_graph.node_value(best))
        return imputed
