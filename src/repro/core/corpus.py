"""Self-supervised training corpus construction (§3.3, Figures 4-5).

Every tuple is replicated once per non-missing attribute: the replica
masks that attribute's value (the *target*) and keeps the rest as
context.  Because the masked value is known, the model's prediction can
be scored — no clean training subset is needed.  A tuple with K
non-missing attributes yields K training samples, each routed to the
task (attribute-specific sub-model) of its target attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import MISSING, Table
from ..nn import train_validation_split

__all__ = ["TrainingSample", "build_training_corpus", "split_corpus",
           "samples_by_task"]


@dataclass(frozen=True)
class TrainingSample:
    """One self-supervised sample: predict ``row``'s value of
    ``target_column`` from the rest of the tuple.

    ``target_value`` is the masked-out ground truth (raw table value;
    numerical values are whatever scale the input table uses — the
    trainer normalizes the table before building the corpus).
    """

    row: int
    target_column: str
    target_value: object

    @property
    def cell(self) -> tuple[int, str]:
        """The masked cell as a ``(row, column)`` pair."""
        return (self.row, self.target_column)


def build_training_corpus(table: Table) -> list[TrainingSample]:
    """Generate all training samples for a (possibly dirty) table.

    Iterates rows in order, columns in table order; deterministic.
    Tuples made entirely of missing values contribute nothing.
    """
    samples: list[TrainingSample] = []
    columns = {name: table.column(name) for name in table.column_names}
    for row in range(table.n_rows):
        for name in table.column_names:
            value = columns[name][row]
            if value is not MISSING:
                samples.append(TrainingSample(row=row, target_column=name,
                                              target_value=value))
    return samples


def split_corpus(samples: list[TrainingSample], validation_fraction: float,
                 rng: np.random.Generator
                 ) -> tuple[list[TrainingSample], list[TrainingSample]]:
    """Shuffle-split the corpus into (train, validation) sample lists.

    The paper holds out 20% of training samples for early stopping and
    removes the held-out cells' edges from the graph (§3.6).
    """
    train_index, validation_index = train_validation_split(
        len(samples), validation_fraction, rng)
    return ([samples[position] for position in train_index],
            [samples[position] for position in validation_index])


def samples_by_task(samples: list[TrainingSample],
                    columns: list[str]) -> dict[str, list[TrainingSample]]:
    """Group samples by their target attribute (one group per task).

    Columns with no samples map to empty lists so every task exists.
    """
    grouped: dict[str, list[TrainingSample]] = {name: [] for name in columns}
    for sample in samples:
        grouped[sample.target_column].append(sample)
    return grouped
