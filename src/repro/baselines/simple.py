"""Trivial baselines: mode/mean filling and K-nearest-neighbour imputation.

The paper's related-work section cites most-common-value imputation [26]
and KNN imputation [47] as the classical floor; they also serve as the
initial fill inside MissForest and MICE.
"""

from __future__ import annotations

import numpy as np

from ..data import MISSING, Table
from ..imputation import Imputer, column_mean, mode_value

__all__ = ["ModeMeanImputer", "KnnImputer"]


class ModeMeanImputer(Imputer):
    """Fill categoricals with the column mode, numericals with the mean."""

    NAME = "mode-mean"

    def impute(self, dirty: Table) -> Table:
        imputed = dirty.copy()
        for column in dirty.column_names:
            if dirty.is_categorical(column):
                fill = mode_value(dirty, column)
            else:
                fill = column_mean(dirty, column)
            if fill is None:
                continue  # column entirely missing: nothing to vote with
            target = imputed.column(column)
            for row in range(dirty.n_rows):
                if target[row] is MISSING:
                    imputed.set(row, column, fill)
        return imputed


class KnnImputer(Imputer):
    """Impute from the K most similar rows.

    Row similarity counts matching categorical cells and closeness of
    z-scored numerical cells over the attributes both rows have
    observed; missing cells contribute nothing.  The imputed value is
    the neighbours' majority vote (categorical) or mean (numerical),
    falling back to mode/mean when no neighbour has the value.
    """

    NAME = "knn"

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def _similarity_matrix(self, table: Table) -> np.ndarray:
        n = table.n_rows
        similarity = np.zeros((n, n))
        for column in table.column_names:
            values = table.column(column)
            observed = np.array([value is not MISSING for value in values])
            if table.is_categorical(column):
                codes = np.array([hash(values[row]) if observed[row] else -1
                                  for row in range(n)])
                match = (codes[:, None] == codes[None, :]) & \
                    observed[:, None] & observed[None, :]
                similarity += match.astype(float)
            else:
                numeric = np.array([values[row] if observed[row] else np.nan
                                    for row in range(n)], dtype=float)
                std = np.nanstd(numeric)
                std = std if std > 1e-12 else 1.0
                z = (numeric - np.nanmean(numeric)) / std
                difference = np.abs(z[:, None] - z[None, :])
                closeness = np.exp(-difference)
                closeness[~(observed[:, None] & observed[None, :])] = 0.0
                similarity += np.nan_to_num(closeness)
        np.fill_diagonal(similarity, -np.inf)
        return similarity

    def impute(self, dirty: Table) -> Table:
        imputed = dirty.copy()
        missing = dirty.missing_cells()
        if not missing:
            return imputed
        similarity = self._similarity_matrix(dirty)
        modes = {column: mode_value(dirty, column)
                 for column in dirty.categorical_columns}
        means = {column: column_mean(dirty, column)
                 for column in dirty.numerical_columns}
        k = min(self.k, max(1, dirty.n_rows - 1))
        neighbour_order = np.argsort(-similarity, axis=1)
        for row, column in missing:
            values = dirty.column(column)
            votes = []
            for neighbour in neighbour_order[row]:
                if len(votes) == k:
                    break
                if values[neighbour] is not MISSING:
                    votes.append(values[neighbour])
            if not votes:
                fill = modes.get(column) if dirty.is_categorical(column) \
                    else means.get(column)
                if fill is not None:
                    imputed.set(row, column, fill)
                continue
            if dirty.is_categorical(column):
                counts: dict = {}
                for vote in votes:
                    counts[vote] = counts.get(vote, 0) + 1
                best = max(counts.values())
                choice = sorted((value for value, count in counts.items()
                                 if count == best), key=str)[0]
                imputed.set(row, column, choice)
            else:
                imputed.set(row, column, float(np.mean(votes)))
        return imputed
