"""FD-REPAIR: minimality-principle repair from functional dependencies.

For a missing cell in the conclusion of an FD, impute the most common
value among tuples sharing the premise (§4.3).  Cells outside any FD
conclusion — or whose premise is missing or unmatched — are left blank,
which is exactly why the paper reports "high precision, but poor
recall" for this baseline.  An optional mode/mean fallback turns it
into a total imputer.
"""

from __future__ import annotations

from ..data import Table
from ..fd import FunctionalDependency, fd_vote
from ..imputation import Imputer
from .simple import ModeMeanImputer

__all__ = ["FdRepairImputer"]


class FdRepairImputer(Imputer):
    """Impute FD conclusions by premise-group majority vote.

    Parameters
    ----------
    fds:
        The input dependencies.
    fallback:
        ``None`` (paper behaviour: uncovered cells stay missing and
        count as wrong) or ``"mode"`` for a mode/mean fallback.
    """

    NAME = "fd-repair"

    def __init__(self, fds: tuple[FunctionalDependency, ...],
                 fallback: str | None = None):
        if fallback not in (None, "mode"):
            raise ValueError(f"unknown fallback {fallback!r}")
        self.fds = tuple(fds)
        self.fallback = fallback

    def impute(self, dirty: Table) -> Table:
        imputed = dirty.copy()
        by_conclusion: dict[str, list[FunctionalDependency]] = {}
        for fd in self.fds:
            by_conclusion.setdefault(fd.rhs, []).append(fd)

        for row, column in dirty.missing_cells():
            for fd in by_conclusion.get(column, []):
                vote = fd_vote(dirty, fd, row)
                if vote is not None:
                    imputed.set(row, column, vote)
                    break

        if self.fallback == "mode":
            imputed = ModeMeanImputer().impute(imputed)
        return imputed
