"""Unit tests for the interprocedural analyzer passes.

Pass 1 (:mod:`repro.analysis.summaries`) is tested on synthetic
sources; pass 2 (:mod:`repro.analysis.callgraph` +
:mod:`repro.analysis.taint`) on small multi-module projects; and the
final class runs both passes over the real ``src/repro`` tree and pins
the facts the rules depend on — the registered worker entries and the
shared-taint chain from ``ShardPool``/``parallel_map`` registrations
into worker parameters.
"""

from pathlib import Path

from repro.analysis.callgraph import link
from repro.analysis.engine import module_of
from repro.analysis.summaries import (
    MODULE_BODY,
    ModuleSummary,
    summarize_source,
)
from repro.analysis.taint import propagate

REPO_ROOT = Path(__file__).resolve().parent.parent


def summarize(source, module="repro.core.x"):
    return summarize_source(source, module,
                            module.replace(".", "/") + ".py")


def build(sources):
    summaries = [summarize_source(source, module_of(path), path)
                 for path, source in sources.items()]
    project = link(summaries)
    return project, propagate(project)


class TestSummaries:
    def test_import_table_absolute_and_aliased(self):
        summary = summarize(
            "import numpy as np\n"
            "import threading\n"
            "from repro.parallel import attach_shared as attach\n")
        assert summary.imports["np"] == "numpy"
        assert summary.imports["threading"] == "threading"
        assert summary.imports["attach"] == "repro.parallel.attach_shared"

    def test_relative_imports_resolve_against_package(self):
        summary = summarize("from ..parallel import spawn_seeds\n"
                            "from . import frozen\n",
                            module="repro.sampling.minibatch")
        assert summary.imports["spawn_seeds"] == \
            "repro.parallel.spawn_seeds"
        assert summary.imports["frozen"] == "repro.sampling.frozen"

    def test_functions_and_methods_summarized(self):
        summary = summarize(
            "def free(a, b):\n    return a\n"
            "class Thing:\n"
            "    def method(self, x):\n        return x\n")
        assert set(summary.functions) == {MODULE_BODY, "free",
                                          "Thing.method"}
        assert summary.functions["free"].params == ["a", "b"]
        assert summary.functions["Thing.method"].params == ["self", "x"]
        assert summary.classes == ["Thing"]

    def test_shared_source_tags_flow_through_aliases(self):
        summary = summarize(
            "from repro.parallel import attach_shared\n"
            "def worker(specs):\n"
            "    views = attach_shared(specs)\n"
            "    x = views['a']\n"
            "    x[0] = 1.0\n")
        writes = summary.functions["worker"].shared_writes
        assert len(writes) == 1
        line, _col, detail, tags = writes[0]
        assert detail == "item assignment"
        assert "shared" in tags

    def test_copy_strips_shared_but_keeps_seed(self):
        summary = summarize(
            "from repro.parallel import attach_shared\n"
            "def worker(specs):\n"
            "    views = attach_shared(specs)\n"
            "    mine = views['a'].copy()\n"
            "    mine[0] = 1.0\n")
        assert summary.functions["worker"].shared_writes == []

    def test_mutator_methods_and_out_kwarg_recorded(self):
        summary = summarize(
            "import numpy as np\n"
            "from repro.parallel import attach_shared\n"
            "def worker(specs):\n"
            "    views = attach_shared(specs)\n"
            "    views['a'].fill(0)\n"
            "    np.add(x, y, out=views['b'])\n")
        details = [entry[2] for entry
                   in summary.functions["worker"].shared_writes]
        assert ".fill() on a shared view" in details
        assert "out= into a shared view" in details

    def test_rng_calls_record_seed_tags(self):
        summary = summarize(
            "import numpy as np\n"
            "def make(payload, seed):\n"
            "    a = np.random.default_rng(payload)\n"
            "    b = np.random.default_rng(seed)\n"
            "    c = np.random.default_rng(7)\n")
        calls = summary.functions["make"].rng_calls
        assert len(calls) == 3
        by_line = {line: tags for line, _c, _api, tags in calls}
        assert by_line[3] == ["param:payload"]
        assert "seeded" in by_line[4]
        assert by_line[5] == ["const"]

    def test_resource_leak_vs_disposal_and_escape(self):
        summary = summarize(
            "from repro.parallel import SharedArrays\n"
            "def leaks(arrays):\n"
            "    pack = SharedArrays(arrays)\n"
            "    return 1\n"
            "def closes(arrays):\n"
            "    pack = SharedArrays(arrays)\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        pack.close()\n"
            "def escapes(arrays):\n"
            "    return SharedArrays(arrays)\n"
            "def managed(arrays):\n"
            "    with SharedArrays(arrays) as pack:\n"
            "        return pack\n")
        assert [entry[0] for entry
                in summary.functions["leaks"].leaked_resources] == \
            ["SharedArrays"]
        assert summary.functions["closes"].leaked_resources == []
        assert summary.functions["escapes"].leaked_resources == []
        assert summary.functions["managed"].leaked_resources == []

    def test_statement_spans_cover_multiline_and_decorated(self):
        summary = summarize(
            "value = call(\n"
            "    1,\n"
            "    2,\n"
            ")\n"
            "@decorator\n"
            "def fn():\n"
            "    pass\n")
        assert (1, 4) in summary.statement_spans
        # Decorated def: span starts at the decorator line.
        assert any(start == 5 for start, _end in summary.statement_spans)

    def test_round_trips_through_json(self):
        summary = summarize(
            "from repro.parallel import attach_shared, SharedArrays\n"
            "def worker(specs):\n"
            "    views = attach_shared(specs)\n"
            "    views['a'][0] = 1\n"
            "    pack = SharedArrays({})\n",
        )
        restored = ModuleSummary.from_json(summary.to_json())
        assert restored.to_json() == summary.to_json()
        assert restored.functions["worker"].shared_writes == \
            summary.functions["worker"].shared_writes


class TestCallGraph:
    def test_worker_entry_detection_and_shared_param(self):
        project, taint = build({
            "repro/distributed/a.py":
                "from repro.parallel import ShardPool\n"
                "from repro.distributed.b import shard_fn, init_fn\n"
                "def run(shared):\n"
                "    pool = ShardPool(shard_fn, workers=2,"
                " shared=shared, init_fn=init_fn)\n"
                "    pool.close()\n",
            "repro/distributed/b.py":
                "def shard_fn(task, views):\n"
                "    return task\n"
                "def init_fn(views, payload):\n"
                "    return None\n",
        })
        entries = project.worker_entries
        assert set(entries) == {"repro.distributed.b.shard_fn",
                                "repro.distributed.b.init_fn"}
        assert entries["repro.distributed.b.shard_fn"].shared_param == 1
        assert entries["repro.distributed.b.init_fn"].shared_param == 0
        assert taint.shared_params["repro.distributed.b.shard_fn"] == \
            {"views"}
        assert taint.shared_params["repro.distributed.b.init_fn"] == \
            {"views"}

    def test_fork_reachability_is_transitive(self):
        project, _ = build({
            "repro/core/a.py":
                "from repro.parallel import parallel_map\n"
                "from repro.core.b import entry\n"
                "def run(tasks):\n"
                "    return parallel_map(entry, tasks, shared={})\n",
            "repro/core/b.py":
                "from repro.core.c import deep\n"
                "def entry(task, views):\n"
                "    return deep(task)\n",
            "repro/core/c.py":
                "def deep(task):\n"
                "    return task\n"
                "def unreachable():\n"
                "    return None\n",
        })
        assert "repro.core.b.entry" in project.fork_reachable
        assert "repro.core.c.deep" in project.fork_reachable
        assert "repro.core.c.unreachable" not in project.fork_reachable

    def test_alias_resolution_follows_reexports(self):
        project, _ = build({
            "repro/parallel/__init__.py":
                "from .pool import parallel_map\n",
            "repro/parallel/pool.py":
                "def parallel_map(fn, tasks, shared=None):\n"
                "    return []\n",
            "repro/core/a.py":
                "from repro.parallel import parallel_map\n"
                "def entry(task, views):\n"
                "    return task\n"
                "def run(tasks):\n"
                "    return parallel_map(entry, tasks)\n",
        })
        # The registrar was imported through the package __init__
        # re-export; the entry must still be detected.
        assert "repro.core.a.entry" in project.worker_entries

    def test_shared_taint_crosses_call_boundary(self):
        project, taint = build({
            "repro/core/a.py":
                "from repro.parallel import parallel_map\n"
                "from repro.core.b import sink\n"
                "def entry(task, views):\n"
                "    sink(views)\n"
                "def run(tasks):\n"
                "    parallel_map(entry, tasks, shared={})\n",
            "repro/core/b.py":
                "def sink(data):\n"
                "    data['x'][0] = 1\n",
        })
        assert taint.shared_params.get("repro.core.b.sink") == {"data"}

    def test_seed_taint_flows_through_returns(self):
        project, taint = build({
            "repro/core/a.py":
                "from repro.parallel import spawn_seeds\n"
                "def derive(rng, n):\n"
                "    return spawn_seeds(rng, n)\n",
        })
        assert "repro.core.a.derive" in taint.returns_seeded


class TestRealRepo:
    """The analyzer's view of the actual codebase: these are the facts
    the clean lint baseline rests on, pinned so a refactor that blinds
    the analyzer (renamed registrar, moved entry) fails loudly instead
    of silently passing everything."""

    def _project(self):
        files = sorted(p for p in (REPO_ROOT / "src" / "repro")
                       .rglob("*.py") if "__pycache__" not in p.parts)
        summaries = [summarize_source(p.read_text(encoding="utf-8"),
                                      module_of(p), str(p))
                     for p in files]
        project = link(summaries)
        return project, propagate(project)

    def test_known_worker_entries_detected(self):
        project, _ = self._project()
        expected = {
            "repro.distributed.worker.dp_train_shard",
            "repro.distributed.worker.dp_worker_init",
            "repro.embeddings.walk_kernel.walk_shard",
            "repro.embeddings.sgns._sgns_epoch_shard",
            "repro.serve.workers.worker_main",
        }
        assert expected <= set(project.worker_entries)

    def test_shared_views_params_resolved(self):
        _, taint = self._project()
        assert taint.shared_params[
            "repro.distributed.worker.dp_train_shard"] == {"views"}
        assert taint.shared_params[
            "repro.embeddings.walk_kernel.walk_shard"] == {"shared"}

    def test_serve_worker_threads_are_fork_reachable(self):
        # worker_main creates feeder threads and runs in a forked
        # child — it is exactly the RPR007 sanctioned-owner case, so
        # the analyzer must see it as fork-reachable (the rule's
        # exemption, not its blindness, is what keeps it clean).
        project, _ = self._project()
        assert "repro.serve.workers.worker_main" in \
            project.fork_reachable
