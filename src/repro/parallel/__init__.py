"""Deterministic parallel execution: a seeded process-pool map over
shared-memory numpy arrays with a serial fallback at ``workers=1``.

Alongside :mod:`repro.serve`, this is the second sanctioned home for
concurrency primitives (lint rule RPR004): every other package
parallelizes by *describing shards* and handing them to
:func:`parallel_map`, never by spawning processes or threads itself.
"""

from .pool import (BENCH_CORES_ENV, WORKERS_ENV, SharedArrays, ShardPool,
                   attach_shared, parallel_map, pool_context,
                   resolve_workers, schedulable_cores, spawn_seeds,
                   start_worker)

__all__ = [
    "WORKERS_ENV",
    "BENCH_CORES_ENV",
    "SharedArrays",
    "ShardPool",
    "attach_shared",
    "parallel_map",
    "pool_context",
    "resolve_workers",
    "schedulable_cores",
    "spawn_seeds",
    "start_worker",
]
