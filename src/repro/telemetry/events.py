"""JSONL event log: write a trace out, read it back, render the tree.

One traced run serializes to a newline-delimited JSON file:

* line 1 — a ``run`` header: schema tag, creation time, free-form run
  metadata (dataset, epochs, dtype, ...);
* one ``span`` event per finished span (completion order), carrying
  ``id``/``parent``/``name``/``path``/``start``/``duration``/``status``
  plus optional ``attrs`` and ``error``;
* a final ``counters`` event with the metrics-registry and tensor-op
  snapshots.

``replay`` parses the file back into plain span records; because the
tree renderer consumes exactly the fields the events carry, rendering a
live tracer and rendering its replayed log produce identical output —
the property the telemetry tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import Tracer

__all__ = ["EVENTS_SCHEMA", "write_jsonl", "read_events", "replay",
           "render_tree"]

#: Schema tag stamped on the ``run`` header line.
EVENTS_SCHEMA = "repro.trace-events/1"


def write_jsonl(tracer: Tracer, path, run: dict | None = None,
                counters: dict | None = None) -> Path:
    """Serialize a tracer's retained spans (plus context) to ``path``."""
    path = Path(path)
    lines = [json.dumps({
        "type": "run",
        "schema": EVENTS_SCHEMA,
        "created_unix": tracer.created_unix,
        "dropped_spans": tracer.dropped,
        "run": run or {},
    })]
    lines.extend(json.dumps(event) for event in tracer.to_events())
    if counters is not None:
        lines.append(json.dumps({"type": "counters", "counters": counters}))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_events(path) -> list[dict]:
    """Parse a JSONL trace file into its event dicts (validated)."""
    events = []
    for number, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{number}: not JSON: {error}") from None
        if not isinstance(event, dict) or "type" not in event:
            raise ValueError(f"{path}:{number}: events need a 'type' field")
        events.append(event)
    if not events:
        raise ValueError(f"{path}: empty trace")
    header = events[0]
    if header["type"] != "run" or header.get("schema") != EVENTS_SCHEMA:
        raise ValueError(f"{path}: not a {EVENTS_SCHEMA} trace "
                         f"(header: {header.get('schema')!r})")
    return events


def replay(events: list[dict]) -> list[dict]:
    """Span records (dicts) from a parsed event list, completion order."""
    spans = []
    for event in events:
        if event.get("type") != "span":
            continue
        for field in ("id", "name", "path", "duration", "status"):
            if field not in event:
                raise ValueError(f"span event missing {field!r}: {event}")
        spans.append(event)
    return spans


# ----------------------------------------------------------------------
# Tree rendering
# ----------------------------------------------------------------------
class _Node:
    __slots__ = ("name", "seconds", "count", "errors", "children", "attrs")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self.errors = 0
        self.children: dict[str, _Node] = {}
        self.attrs: dict = {}


def _tree_from_spans(spans) -> _Node:
    """Aggregate span records (objects or dicts) into a path tree."""
    root = _Node("")
    for span in spans:
        if isinstance(span, dict):
            path, duration = span["path"], span["duration"]
            status, attrs = span["status"], span.get("attrs") or {}
        else:
            path, duration = span.path, span.duration
            status, attrs = span.status, span.attrs
        node = root
        for name in path.split("/"):
            child = node.children.get(name)
            if child is None:
                child = _Node(name)
                node.children[name] = child
            node = child
        node.seconds += duration
        node.count += 1
        node.errors += int(status == "error")
        # Summing attrs across entries (e.g. loss) would be meaningless;
        # keep the last value per key (the final epoch's loss).
        for key, value in attrs.items():
            node.attrs[key] = value
    return root


def render_tree(spans, max_depth: int | None = None,
                min_seconds: float = 0.0) -> str:
    """Render span records as an aggregated unicode tree.

    Spans sharing a path are folded into one line showing total seconds
    and entry count; the last-seen attributes of the path are appended,
    so per-epoch loss values surface on the ``epoch`` line.  The output
    depends only on the event fields, so a live tracer and its replayed
    JSONL render identically.
    """
    root = _tree_from_spans(spans)
    lines: list[str] = []

    def visit(node: _Node, prefix: str, is_last: bool, depth: int) -> None:
        connector = "" if depth == 0 else ("└─ " if is_last else "├─ ")
        label = f"{prefix}{connector}{node.name}"
        detail = f"{node.seconds * 1e3:10.2f} ms"
        if node.count != 1:
            detail += f"  x{node.count}"
        if node.errors:
            detail += f"  errors={node.errors}"
        if node.attrs:
            pairs = ", ".join(f"{key}={_fmt(value)}"
                              for key, value in sorted(node.attrs.items()))
            detail += f"  [{pairs}]"
        lines.append(f"{label:<44s}{detail}")
        if max_depth is not None and depth + 1 > max_depth:
            return
        children = [child for child in node.children.values()
                    if child.seconds >= min_seconds]
        child_prefix = prefix if depth == 0 else \
            prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1, depth + 1)

    top = list(root.children.values())
    for index, node in enumerate(top):
        visit(node, "", index == len(top) - 1, 0)
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
