"""Categorical encoders mapping cell values to dense integer ids.

The paper's categorical domains are, w.l.o.g., ``{1, ..., |A_i|}`` (§2);
this module provides the concrete bijection used by classifiers and by
the graph builder.
"""

from __future__ import annotations

import numpy as np

from .table import MISSING, Table

__all__ = ["ColumnEncoder", "TableEncoder"]


class ColumnEncoder:
    """Bijection between a column's domain and ``0..k-1`` integer ids."""

    def __init__(self, values: list):
        self.values: list = list(values)
        self.index: dict = {value: position
                            for position, value in enumerate(self.values)}
        if len(self.index) != len(self.values):
            raise ValueError("domain contains duplicate values")

    @classmethod
    def fit(cls, table: Table, name: str) -> "ColumnEncoder":
        """Build an encoder from the observed domain of a column."""
        return cls(table.domain(name))

    @property
    def cardinality(self) -> int:
        """Domain size ``|A_i|``."""
        return len(self.values)

    def encode(self, value) -> int:
        """Integer id of ``value``; raises ``KeyError`` if out of domain."""
        return self.index[value]

    def encode_or(self, value, default: int = -1) -> int:
        """Integer id of ``value`` or ``default`` when unseen/missing."""
        if value is MISSING:
            return default
        return self.index.get(value, default)

    def decode(self, code: int):
        """Value whose id is ``code``."""
        return self.values[code]

    def encode_column(self, values, missing_code: int = -1) -> np.ndarray:
        """Vectorized encode with ``missing_code`` for missing cells."""
        return np.array([self.encode_or(value, missing_code) for value in values],
                        dtype=np.int64)


class TableEncoder:
    """Per-column encoders for all categorical attributes of a table."""

    def __init__(self, table: Table):
        self.encoders: dict[str, ColumnEncoder] = {
            name: ColumnEncoder.fit(table, name)
            for name in table.categorical_columns
        }

    @classmethod
    def from_vocabularies(cls, vocabularies: dict[str, list]
                          ) -> "TableEncoder":
        """Rebuild an encoder from stored per-column value lists.

        Value order is the code assignment, so a checkpointed encoder
        restored through this constructor decodes exactly as the
        original did.
        """
        encoder = cls.__new__(cls)
        encoder.encoders = {name: ColumnEncoder(values)
                            for name, values in vocabularies.items()}
        return encoder

    def __getitem__(self, name: str) -> ColumnEncoder:
        return self.encoders[name]

    def __contains__(self, name: str) -> bool:
        return name in self.encoders

    def cardinality(self, name: str) -> int:
        """Domain size of categorical column ``name``."""
        return self.encoders[name].cardinality
