"""End-to-end tests for the HTTP imputation server and live metrics."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import GrimpConfig, GrimpImputer
from repro.corruption import inject_mcar
from repro.data import Table
from repro.serve import ImputationServer, InferenceEngine, \
    LatencyHistogram, ServingMetrics, percentile


def structured_table(n_rows=50, seed=0):
    rng = np.random.default_rng(seed)
    cities = ["paris", "rome", "berlin"]
    country_of = {"paris": "france", "rome": "italy", "berlin": "germany"}
    population_of = {"paris": 2.1, "rome": 2.8, "berlin": 3.6}
    chosen = [cities[index] for index in rng.integers(0, 3, n_rows)]
    return Table({
        "city": chosen,
        "country": [country_of[city] for city in chosen],
        "population": [population_of[city] + rng.normal(0, 0.05)
                       for city in chosen],
    })


@pytest.fixture(scope="module")
def server():
    corruption = inject_mcar(structured_table(), 0.15,
                             np.random.default_rng(1))
    imputer = GrimpImputer(GrimpConfig(feature_dim=8, gnn_dim=10,
                                       merge_dim=12, epochs=6, patience=6,
                                       lr=1e-2, seed=0))
    imputer.impute(corruption.dirty)
    instance = ImputationServer(InferenceEngine(imputer), port=0,
                                max_batch_size=16, max_delay_ms=3.0)
    instance.start()
    yield instance
    instance.stop()


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path,
                                    timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(server, path, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        server.url + path, data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["pinned"] is True
        assert payload["columns"] == ["city", "country", "population"]
        assert payload["uptime_seconds"] >= 0

    def test_impute_single_row(self, server):
        status, payload = post(server, "/impute", {
            "row": {"city": "paris", "country": None, "population": 2.1}})
        assert status == 200
        assert payload["row"]["country"] == "france"
        assert payload["latency_ms"] >= 0

    def test_impute_rows_preserves_order_and_observed_cells(self, server):
        rows = [
            {"city": "rome", "country": None, "population": None},
            {"city": None, "country": "germany", "population": 3.6},
        ]
        status, payload = post(server, "/impute", {"rows": rows})
        assert status == 200
        assert len(payload["rows"]) == 2
        assert payload["rows"][0]["city"] == "rome"
        assert payload["rows"][0]["country"] == "italy"
        assert payload["rows"][1]["country"] == "germany"
        assert all(value is not None for row in payload["rows"]
                   for value in row.values())

    def test_metrics_reflect_traffic(self, server):
        post(server, "/impute",
             {"row": {"city": "berlin", "country": None,
                      "population": None}})
        status, payload = get(server, "/metrics")
        assert status == 200
        assert payload["requests"] >= 1
        assert payload["rows_imputed"] >= 1
        assert payload["latency_ms"]["p50"] >= 0
        assert payload["engine"]["pinned"] is True
        assert payload["batching"]["max_batch_size"] == 16
        assert payload["batches"] >= 1

    def test_metrics_expose_telemetry_section(self, server):
        post(server, "/impute",
             {"row": {"city": "berlin", "country": None,
                      "population": None}})
        _, payload = get(server, "/metrics")
        telemetry = payload["telemetry"]
        # HTTP request and batcher-flush spans on the server tracer.
        assert telemetry["spans"]["http.impute"]["count"] >= 1
        assert telemetry["spans"]["batcher.flush"]["count"] >= 1
        # Engine pin/batch spans surface under the engine stats.
        phases = payload["engine"]["phases"]
        assert phases["pin"]["count"] == 1
        assert phases["batch"]["count"] >= 1
        # Plan-cache dispatch counters from the global registry: serving
        # runs entirely on precompiled operators, so hits grow while the
        # legacy path stays untouched by this server's traffic.
        assert telemetry["counters"]["plan.dispatch.planned"] >= 1
        assert "tensor_ops" in telemetry

    def test_unknown_path_404(self, server):
        status, payload = get(server, "/nope")
        assert status == 404
        assert "unknown path" in payload["error"]

    def test_malformed_body_400(self, server):
        status, payload = post(server, "/impute", {"not-rows": []})
        assert status == 400
        assert "error" in payload

    def test_unknown_column_400(self, server):
        status, payload = post(server, "/impute",
                               {"row": {"altitude": 12}})
        assert status == 400
        assert "unknown column" in payload["error"]

    def test_empty_rows_400(self, server):
        status, payload = post(server, "/impute", {"rows": []})
        assert status == 400


class TestConcurrentClients:
    def test_parallel_requests_all_answered(self, server):
        n_clients = 8
        outcomes = [None] * n_clients

        def client(index):
            outcomes[index] = post(server, "/impute", {
                "row": {"city": "paris", "country": None,
                        "population": None}})

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(outcome is not None for outcome in outcomes)
        for status, payload in outcomes:
            assert status == 200
            assert payload["row"]["country"] == "france"
            assert payload["row"]["population"] is not None


class TestServingMetrics:
    def test_percentile_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 50) == 51.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_snapshot_counts(self):
        metrics = ServingMetrics()
        for latency in (0.01, 0.02, 0.03):
            metrics.record_request(latency, n_rows=2)
        metrics.record_request(0.5, ok=False)
        metrics.record_rejected()
        metrics.record_batch(3)
        metrics.record_batch(3)
        metrics.record_batch(1)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 5
        assert snapshot["errors"] == 1
        assert snapshot["rejected"] == 1
        assert snapshot["rows_imputed"] == 6
        assert snapshot["latency_ms"]["count"] == 3
        assert snapshot["latency_ms"]["mean"] == pytest.approx(20.0)
        assert snapshot["batch_size_histogram"] == {"1": 1, "3": 2}
        assert snapshot["mean_batch_size"] == pytest.approx(7 / 3)

    def test_histogram_memory_is_constant(self):
        metrics = ServingMetrics()
        for index in range(10_000):
            metrics.record_request(float(index % 7) * 1e-3)
        snapshot = metrics.snapshot()["latency_ms"]
        assert snapshot["count"] == 10_000
        # Fixed buckets: the histogram never grows with traffic.
        assert len(snapshot["histogram"]["buckets_ms"]) <= 40


class TestLatencyHistogram:
    def test_quantiles_are_bucket_upper_bounds(self):
        histogram = LatencyHistogram(bounds=(0.001, 0.01, 0.1, 1.0))
        for _ in range(98):
            histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(0.5)
        assert histogram.quantile(50) == 0.01
        assert histogram.quantile(99) == 0.1
        assert histogram.quantile(100) == 1.0
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(
            (98 * 0.005 + 0.05 + 0.5) / 100)

    def test_overflow_reports_observed_max(self):
        histogram = LatencyHistogram(bounds=(0.001, 0.01))
        histogram.observe(5.0)
        assert histogram.quantile(99) == 5.0
        assert histogram.snapshot()["buckets_ms"]["+Inf"] == 1

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(99) == 0.0
        assert histogram.mean == 0.0

    def test_merge(self):
        left = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        right = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        for _ in range(10):
            left.observe(0.0005)
        for _ in range(10):
            right.observe(0.05)
        left.merge(right)
        assert left.count == 20
        assert left.quantile(50) == 0.001
        assert left.quantile(99) == 0.1
        with pytest.raises(ValueError):
            left.merge(LatencyHistogram(bounds=(0.5,)))

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(0.1, 0.01))
