"""The GRIMP multi-task model: shared layer + per-attribute task heads.

Architecture (Figure 2):

1. **Shared section** — a heterogeneous GNN over the table graph
   (per-column GraphSAGE sub-modules, eq. 1) followed by a *merging
   step* of two linear layers, "a further pooling step [so as] to not
   use GNN embeddings directly" (§3.5).  Parameters here are shared by
   all tasks (hard parameter sharing).
2. **Task-specific section** — one head per attribute (classifier for
   categorical, single-output regressor for numerical), implemented as
   linear or attention tasks (:mod:`repro.core.tasks`).

The model also owns the *training-vector* assembly: a sample's vector is
the tuple's per-column node representations with zeros at the masked
target and at missing cells (Figure 4's ``(0)`` entries).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..data import MISSING, Table
from ..graph import TableGraph
from ..gnn import HeteroGNN, PlannedOperator, sparse_matmul
from ..nn import Linear, Module
from ..tensor import Tensor, concat
from .config import GrimpConfig
from .corpus import TrainingSample
from .tasks import AttentionTask, LinearTask

__all__ = ["SharedLayer", "GrimpModel", "build_node_index_matrix",
           "build_sample_indices", "build_row_indices"]


class SharedLayer(Module):
    """Heterogeneous GNN plus the two-linear-layer merging step.

    The merging step "recombines the vectors produced by the GNN"
    (§3.5); it consumes the GNN output concatenated with the node's own
    (refined) input features — a residual path that keeps node identity
    sharp while the GNN contributes neighbourhood context.
    """

    def __init__(self, columns: list[str], feature_dim: int, gnn_dim: int,
                 merge_dim: int, rng: np.random.Generator,
                 layer_type: str = "sage"):
        super().__init__()
        self.gnn = HeteroGNN(columns, [feature_dim, gnn_dim, gnn_dim],
                             rng=rng, layer_types=layer_type)
        self.merge1 = Linear(gnn_dim + feature_dim, merge_dim, rng=rng)
        self.merge2 = Linear(merge_dim, merge_dim, rng=rng)
        self.output_dim = merge_dim

    def forward(self, adjacencies: dict[str, sparse.spmatrix],
                features: Tensor) -> Tensor:
        hidden = self.gnn(adjacencies, features)
        combined = concat([hidden, features], axis=1)
        return self.merge2(self.merge1(combined).relu())


class GrimpModel(Module):
    """Shared layer + one task head per attribute.

    Parameters
    ----------
    table:
        The (dirty, normalized) table the model is built for; provides
        column order, kinds, and categorical domains.
    cardinalities:
        Domain size per categorical column (classifier output widths).
    attribute_vectors:
        ``(C, feature_dim)`` pre-trained attribute vectors seeding each
        attention task's ``Q`` matrix.
    fd_related:
        Per-column list of FD-related column indices, consumed by the
        ``weak_diagonal_fd`` strategy.
    """

    def __init__(self, table: Table, cardinalities: dict[str, int],
                 attribute_vectors: np.ndarray, config: GrimpConfig,
                 rng: np.random.Generator,
                 fd_related: dict[str, list[int]] | None = None,
                 gnn_edge_types: list[str] | None = None):
        super().__init__()
        self.columns = list(table.column_names)
        self.kinds = dict(table.kinds)
        self.config = config
        # The GNN gets one sub-module per edge type — the table's
        # attributes plus any augmentation edge types (§3.2).
        self.gnn_edge_types = list(gnn_edge_types) if gnn_edge_types \
            else list(self.columns)
        self.shared = SharedLayer(self.gnn_edge_types, config.feature_dim,
                                  config.gnn_dim, config.merge_dim, rng,
                                  layer_type=config.gnn_layer_type)
        fd_related = fd_related or {}
        self.tasks: dict[str, Module] = {}
        for index, column in enumerate(self.columns):
            output_dim = cardinalities[column] \
                if self.kinds[column] == "categorical" else 1
            output_dim = max(output_dim, 1)
            if config.task_kind == "linear":
                self.tasks[column] = LinearTask(
                    len(self.columns), config.merge_dim, output_dim, rng=rng)
            else:
                self.tasks[column] = AttentionTask(
                    len(self.columns), config.merge_dim, output_dim,
                    target_index=index, attribute_vectors=attribute_vectors,
                    k_strategy=config.k_strategy,
                    fd_columns=fd_related.get(column), rng=rng)

    # ------------------------------------------------------------------
    def node_representations(self, adjacencies: dict[str, sparse.spmatrix],
                             features: Tensor) -> Tensor:
        """Shared-section output ``h`` for every graph node, with a
        trailing all-zero row for null lookups (index ``n_nodes``)."""
        h = self.shared(adjacencies, features)
        zero_row = Tensor(np.zeros((1, self.shared.output_dim),
                                   dtype=h.data.dtype))
        return concat([h, zero_row], axis=0)

    def training_vectors(self, h_extended: Tensor,
                         indices: np.ndarray | None = None,
                         gather: PlannedOperator | None = None) -> Tensor:
        """Gather ``(n, C, D)`` training vectors from node representations.

        ``indices`` is an ``(n, C)`` int matrix of node ids where masked
        or missing cells point at the trailing zero row.  When a
        precompiled ``gather`` operator is supplied (full-batch training
        with a :class:`~repro.gnn.MessagePassingPlan`), the gather runs
        as one planned sparse product whose backward is a cached
        scatter-add — no per-epoch ``np.add.at`` — and ``indices`` is
        not needed.
        """
        n_columns = len(self.columns)
        if gather is not None:
            flat = sparse_matmul(gather, h_extended)
            n = gather.shape[0] // n_columns
            return flat.reshape(n, n_columns, h_extended.shape[1])
        if indices is None:
            raise ValueError("training_vectors needs indices or a gather "
                             "operator")
        return h_extended[indices]

    def task_output(self, column: str, vectors: Tensor) -> Tensor:
        """Run one attribute's head on its training vectors."""
        return self.tasks[column](vectors)


def build_node_index_matrix(table: Table,
                            table_graph: TableGraph) -> np.ndarray:
    """Per-row node-index matrix ``(n_rows, C)`` for the whole table.

    Entry ``[r, c]`` is the node id of row ``r``'s value in column ``c``;
    missing cells (and values without a node) map to ``n_nodes`` — the
    trailing zero row appended by
    :meth:`GrimpModel.node_representations`.  Sample- and row-index
    matrices are sliced out of this with fancy indexing, so each cell's
    node lookup happens once per fit instead of once per sample.
    """
    null_index = table_graph.graph.n_nodes
    columns = table.column_names
    matrix = np.full((table.n_rows, len(columns)), null_index,
                     dtype=np.int64)
    for column_index, column in enumerate(columns):
        values = table.column(column)
        target = matrix[:, column_index]
        node_of: dict = {}
        for row, value in enumerate(values):
            if value is MISSING:
                continue
            node = node_of.get(value)
            if node is None:
                found = table_graph.cell_node(column, value)
                node = null_index if found is None else found
                node_of[value] = node
            target[row] = node
    return matrix


def build_sample_indices(table: Table, table_graph: TableGraph,
                         samples: list[TrainingSample],
                         node_matrix: np.ndarray | None = None) -> np.ndarray:
    """Node-index matrix for training samples: ``(n_samples, C)``.

    Entry ``[s, c]`` is the node id of sample ``s``'s value in column
    ``c``; the sample's target column and missing cells map to
    ``n_nodes`` (the zero row appended by
    :meth:`GrimpModel.node_representations`).  Pass a precomputed
    ``node_matrix`` (:func:`build_node_index_matrix`) to share the
    per-cell lookups across call sites.
    """
    if node_matrix is None:
        node_matrix = build_node_index_matrix(table, table_graph)
    null_index = table_graph.graph.n_nodes
    n = len(samples)
    rows = np.fromiter((sample.row for sample in samples),
                       dtype=np.int64, count=n)
    matrix = node_matrix[rows]
    position = {column: index
                for index, column in enumerate(table.column_names)}
    targets = np.fromiter((position[sample.target_column]
                           for sample in samples), dtype=np.int64, count=n)
    matrix[np.arange(n), targets] = null_index
    return matrix


def build_row_indices(table: Table, table_graph: TableGraph,
                      rows: list[int],
                      mask_columns: list[str] | None = None,
                      node_matrix: np.ndarray | None = None) -> np.ndarray:
    """Node-index matrix for whole rows (imputation-time vectors).

    Missing cells (and optionally ``mask_columns``) map to the zero row.
    A row's vector is identical regardless of which of its missing
    attributes is being imputed — the Figure 5 situation that the
    independent per-attribute tasks are designed to resolve.
    """
    if node_matrix is None:
        node_matrix = build_node_index_matrix(table, table_graph)
    null_index = table_graph.graph.n_nodes
    matrix = node_matrix[np.asarray(rows, dtype=np.int64)]
    if mask_columns:
        position = {column: index
                    for index, column in enumerate(table.column_names)}
        for column in mask_columns:
            matrix[:, position[column]] = null_index
    return matrix
