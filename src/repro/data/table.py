"""Mixed-type relational table with missing-value support.

This is the reproduction's counterpart of the paper's dataset
:math:`\\mathcal{D}`: ``n`` tuples over ``m`` attributes, each attribute
either categorical or numerical, with missing cells marked by a sentinel
(``None`` here, :math:`\\emptyset` in the paper, §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Table", "ColumnKind", "MISSING"]

#: Sentinel used for missing values in a :class:`Table`.
MISSING = None

CATEGORICAL = "categorical"
NUMERICAL = "numerical"
_VALID_KINDS = (CATEGORICAL, NUMERICAL)


@dataclass(frozen=True)
class ColumnKind:
    """Constants naming the two attribute kinds from the paper's §2."""

    CATEGORICAL = CATEGORICAL
    NUMERICAL = NUMERICAL


def _infer_kind(values) -> str:
    """Infer a column kind: numerical iff every non-missing value is a
    real number (bools count as categorical)."""
    saw_value = False
    for value in values:
        if value is MISSING:
            continue
        saw_value = True
        if isinstance(value, bool) or not isinstance(value, (int, float, np.integer,
                                                             np.floating)):
            return CATEGORICAL
    return NUMERICAL if saw_value else CATEGORICAL


class Table:
    """An in-memory relation with named, typed columns and missing cells.

    Parameters
    ----------
    columns:
        Mapping from column name to a list of cell values.  Missing cells
        are ``None``.  All columns must have equal length.
    kinds:
        Optional mapping from column name to ``"categorical"`` or
        ``"numerical"``; inferred from the values when omitted.
    """

    def __init__(self, columns: dict[str, list], kinds: dict[str, str] | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"ragged columns: {lengths}")
        self.column_names: list[str] = list(columns)
        self.n_rows: int = next(iter(lengths.values()))
        kinds = kinds or {}
        self.kinds: dict[str, str] = {}
        self._columns: dict[str, np.ndarray] = {}
        for name, values in columns.items():
            kind = kinds.get(name) or _infer_kind(values)
            if kind not in _VALID_KINDS:
                raise ValueError(f"unknown column kind {kind!r} for {name!r}")
            self.kinds[name] = kind
            column = np.empty(self.n_rows, dtype=object)
            for row, value in enumerate(values):
                if value is MISSING:
                    column[row] = MISSING
                elif kind == NUMERICAL:
                    column[row] = float(value)
                else:
                    column[row] = value
            self._columns[name] = column

    # ------------------------------------------------------------------
    # Shape and schema
    # ------------------------------------------------------------------
    @property
    def n_columns(self) -> int:
        """Number of attributes ``m``."""
        return len(self.column_names)

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_columns)``."""
        return (self.n_rows, self.n_columns)

    @property
    def categorical_columns(self) -> list[str]:
        """Names of categorical attributes (:math:`C(\\mathcal{R})`)."""
        return [name for name in self.column_names
                if self.kinds[name] == CATEGORICAL]

    @property
    def numerical_columns(self) -> list[str]:
        """Names of numerical attributes (:math:`N(\\mathcal{R})`)."""
        return [name for name in self.column_names
                if self.kinds[name] == NUMERICAL]

    def is_categorical(self, name: str) -> bool:
        """Whether column ``name`` is categorical."""
        return self.kinds[name] == CATEGORICAL

    def is_numerical(self, name: str) -> bool:
        """Whether column ``name`` is numerical."""
        return self.kinds[name] == NUMERICAL

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Return the object array for one column (not a copy)."""
        return self._columns[name]

    def get(self, row: int, name: str):
        """Value of cell ``(row, name)``; ``None`` when missing."""
        return self._columns[name][row]

    def set(self, row: int, name: str, value) -> None:
        """Assign a value (or ``None``) to cell ``(row, name)``."""
        if value is MISSING:
            self._columns[name][row] = MISSING
        elif self.kinds[name] == NUMERICAL:
            self._columns[name][row] = float(value)
        else:
            self._columns[name][row] = value

    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a ``{column: value}`` dict."""
        return {name: self._columns[name][index] for name in self.column_names}

    def __getitem__(self, key):
        row, name = key
        return self.get(row, name)

    def __setitem__(self, key, value):
        row, name = key
        self.set(row, name, value)

    # ------------------------------------------------------------------
    # Missing values
    # ------------------------------------------------------------------
    def is_missing(self, row: int, name: str) -> bool:
        """Whether cell ``(row, name)`` is the missing sentinel."""
        return self._columns[name][row] is MISSING

    def missing_mask(self) -> np.ndarray:
        """Boolean ``(n_rows, n_columns)`` array; true where missing."""
        mask = np.zeros((self.n_rows, self.n_columns), dtype=bool)
        for position, name in enumerate(self.column_names):
            column = self._columns[name]
            mask[:, position] = np.frompyfunc(lambda v: v is MISSING, 1, 1)(
                column).astype(bool)
        return mask

    def missing_cells(self) -> list[tuple[int, str]]:
        """All ``(row, column_name)`` pairs whose cell is missing."""
        cells = []
        for name in self.column_names:
            column = self._columns[name]
            for row in range(self.n_rows):
                if column[row] is MISSING:
                    cells.append((row, name))
        return cells

    def missing_fraction(self) -> float:
        """Fraction of cells that are missing."""
        return self.missing_mask().mean() if self.n_rows else 0.0

    # ------------------------------------------------------------------
    # Domains and statistics
    # ------------------------------------------------------------------
    def domain(self, name: str) -> list:
        """Sorted distinct non-missing values of a column
        (:math:`Dom(A_i)` in the paper)."""
        values = {value for value in self._columns[name] if value is not MISSING}
        return sorted(values, key=lambda v: (str(type(v)), v))

    def value_counts(self, name: str) -> dict:
        """Occurrence count for every non-missing value of a column."""
        counts: dict = {}
        for value in self._columns[name]:
            if value is not MISSING:
                counts[value] = counts.get(value, 0) + 1
        return counts

    def n_distinct(self) -> int:
        """Number of distinct ``(column, value)`` pairs in the table.

        Matches the paper's "Distinct" statistic in Table 1: the same
        string appearing in two attributes counts twice, mirroring the
        graph's disambiguation rule (§3.2).
        """
        return sum(len(self.domain(name)) for name in self.column_names)

    # ------------------------------------------------------------------
    # Relational utilities
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, column_names: list[str], rows: list[list],
                  kinds: dict[str, str] | None = None) -> "Table":
        """Build a table from row lists (the inverse of :meth:`to_rows`)."""
        if any(len(row) != len(column_names) for row in rows):
            raise ValueError("every row must have one value per column")
        columns = {name: [row[index] for row in rows]
                   for index, name in enumerate(column_names)}
        if not columns:
            raise ValueError("a table needs at least one column")
        return cls(columns, kinds=kinds)

    def project(self, columns: list[str]) -> "Table":
        """Return a new table with only the given columns (in order)."""
        unknown = [name for name in columns if name not in self._columns]
        if unknown:
            raise KeyError(f"unknown columns: {unknown}")
        return Table({name: list(self._columns[name]) for name in columns},
                     kinds={name: self.kinds[name] for name in columns})

    def rename(self, mapping: dict[str, str]) -> "Table":
        """Return a copy with columns renamed per ``mapping``."""
        unknown = [name for name in mapping if name not in self._columns]
        if unknown:
            raise KeyError(f"unknown columns: {unknown}")
        new_names = [mapping.get(name, name) for name in self.column_names]
        if len(set(new_names)) != len(new_names):
            raise ValueError("renaming would create duplicate columns")
        return Table({new: list(self._columns[old])
                      for old, new in zip(self.column_names, new_names)},
                     kinds={new: self.kinds[old]
                            for old, new in zip(self.column_names,
                                                new_names)})

    def concat_rows(self, other: "Table") -> "Table":
        """Vertically stack two tables with identical schemas."""
        if self.column_names != other.column_names or \
                self.kinds != other.kinds:
            raise ValueError("schemas must match to concatenate rows")
        return Table({name: list(self._columns[name]) +
                      list(other._columns[name])
                      for name in self.column_names},
                     kinds=dict(self.kinds))

    # ------------------------------------------------------------------
    # Conversion and copies
    # ------------------------------------------------------------------
    def copy(self) -> "Table":
        """Deep copy of the table."""
        return Table({name: list(self._columns[name]) for name in self.column_names},
                     kinds=dict(self.kinds))

    def numeric_matrix(self, columns: list[str] | None = None) -> np.ndarray:
        """Float matrix of the selected numerical columns with ``nan`` for
        missing cells (useful for the numpy-based baselines)."""
        columns = columns if columns is not None else self.numerical_columns
        matrix = np.full((self.n_rows, len(columns)), np.nan)
        for position, name in enumerate(columns):
            if self.kinds[name] != NUMERICAL:
                raise ValueError(f"column {name!r} is not numerical")
            column = self._columns[name]
            for row in range(self.n_rows):
                if column[row] is not MISSING:
                    matrix[row, position] = column[row]
        return matrix

    def to_rows(self) -> list[list]:
        """Return the table as a list of row lists (column order)."""
        return [[self._columns[name][row] for name in self.column_names]
                for row in range(self.n_rows)]

    def select_rows(self, indices) -> "Table":
        """Return a new table containing only the given row indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table({name: list(self._columns[name][indices])
                      for name in self.column_names}, kinds=dict(self.kinds))

    def equals(self, other: "Table") -> bool:
        """Structural equality: schema, kinds, and all cells."""
        if self.column_names != other.column_names or self.kinds != other.kinds:
            return False
        if self.n_rows != other.n_rows:
            return False
        for name in self.column_names:
            mine, theirs = self._columns[name], other._columns[name]
            for row in range(self.n_rows):
                a, b = mine[row], theirs[row]
                if a is MISSING or b is MISSING:
                    if a is not b:
                        return False
                elif self.kinds[name] == NUMERICAL:
                    if not np.isclose(a, b):
                        return False
                elif a != b:
                    return False
        return True

    def __repr__(self) -> str:
        return (f"Table(rows={self.n_rows}, columns={self.n_columns}, "
                f"categorical={len(self.categorical_columns)}, "
                f"numerical={len(self.numerical_columns)})")
