"""Persistence for experiment results.

Long grids (Figure 8 takes minutes per profile) are worth caching: this
module round-trips lists of :class:`ExperimentResult` through JSON so a
harness can render new views (rankings, rate curves, correlations) from
stored runs without recomputing them.

Two persisted-artifact families coexist in this codebase — experiment
results (here) and model checkpoints (:mod:`repro.serve.checkpoint`) —
so every file carries a ``format`` marker naming which family it
belongs to.  Loading a file from the wrong family fails immediately
with a message that points at the right API, instead of failing deep in
deserialization.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from .runner import ExperimentResult

__all__ = ["save_results", "load_results", "RESULTS_FORMAT",
           "RESULTS_FORMAT_VERSION"]

#: Format-family marker written into every results file.
RESULTS_FORMAT = "repro-experiment-results"

#: Current (and only) supported results format version.
RESULTS_FORMAT_VERSION = 1

# Backwards-compatible alias (pre-namespacing name).
_FORMAT_VERSION = RESULTS_FORMAT_VERSION


def save_results(results: list[ExperimentResult], path: str | Path) -> None:
    """Write results to a JSON file (overwrites)."""
    path = Path(path)
    payload = {
        "format": RESULTS_FORMAT,
        "format_version": RESULTS_FORMAT_VERSION,
        "results": [asdict(result) for result in results],
    }
    path.write_text(json.dumps(payload, indent=1, allow_nan=True))


def load_results(path: str | Path) -> list[ExperimentResult]:
    """Read results written by :func:`save_results`.

    Raises ``ValueError`` on unknown formats, version mismatches, or
    malformed rows — before any row deserialization starts — so stale
    or mixed-up caches fail loudly instead of silently skewing reports.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not an experiment-results file")
    marker = payload.get("format")
    if marker == "repro-grimp-checkpoint":
        raise ValueError(
            f"{path} is a model-checkpoint manifest, not experiment "
            f"results; load it with repro.serve.load_checkpoint()")
    # Files written before the format marker existed carry only
    # format_version + results; accept them.
    if marker is not None and marker != RESULTS_FORMAT:
        raise ValueError(f"{path} has format {marker!r}, expected "
                         f"{RESULTS_FORMAT!r}")
    if "results" not in payload:
        raise ValueError(f"{path} is not an experiment-results file")
    version = payload.get("format_version")
    if version != RESULTS_FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r} in {path}; "
            f"this build reads version {RESULTS_FORMAT_VERSION} only")
    results = []
    for row in payload["results"]:
        try:
            results.append(ExperimentResult(**row))
        except TypeError as error:
            raise ValueError(f"malformed result row {row!r}") from error
    return results
