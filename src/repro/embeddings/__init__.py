"""Embedding substrates: FastText-like subword hashing, EmbDI-style
walk + skip-gram embeddings, and node-feature initialization."""

from .fasttext_like import SubwordEmbedder
from .sgns import SkipGram
from .walks import WalkGraph, build_walk_graph, generate_walks
from .embdi import EmbdiEmbedder
from .features import NodeFeatures, initialize_node_features, FEATURE_STRATEGIES

__all__ = [
    "SubwordEmbedder",
    "SkipGram",
    "WalkGraph",
    "build_walk_graph",
    "generate_walks",
    "EmbdiEmbedder",
    "NodeFeatures",
    "initialize_node_features",
    "FEATURE_STRATEGIES",
]
