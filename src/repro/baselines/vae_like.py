"""HI-VAE-style variational autoencoder imputer (Nazabal et al. [38]).

The third generative baseline from the paper's related work (next to the
MIDA autoencoder and GAIN): rows are encoded into a Gaussian latent
space, sampled with the reparameterization trick, and decoded back;
training maximizes the observed-entry ELBO (masked reconstruction minus
KL).  Missing cells are read off the decoder's output, with categorical
blocks coerced to the active domain — the "incomplete heterogeneous
data" recipe of HI-VAE, at laptop scale on our autograd.
"""

from __future__ import annotations

import numpy as np

from ..data import Table
from ..imputation import Imputer
from ..nn import Adam, Linear, Module
from ..tensor import Tensor, mse_loss, no_grad

__all__ = ["VaeImputer"]


class _Vae(Module):
    """Gaussian-latent VAE over dense row encodings."""

    def __init__(self, width: int, hidden: int, latent: int,
                 rng: np.random.Generator):
        super().__init__()
        self.latent = latent
        self.encoder = Linear(width, hidden, rng=rng)
        self.mu_head = Linear(hidden, latent, rng=rng)
        self.logvar_head = Linear(hidden, latent, rng=rng)
        self.decoder1 = Linear(latent, hidden, rng=rng)
        self.decoder2 = Linear(hidden, width, rng=rng)

    def encode(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder(x).relu()
        # Clamp log-variance for numerical stability.
        return self.mu_head(hidden), self.logvar_head(hidden).clip(-6.0, 6.0)

    def reparameterize(self, mu: Tensor, logvar: Tensor,
                       rng: np.random.Generator) -> Tensor:
        epsilon = Tensor(rng.standard_normal(mu.shape))
        return mu + (logvar * 0.5).exp() * epsilon

    def decode(self, z: Tensor) -> Tensor:
        return self.decoder2(self.decoder1(z).relu())

    def forward(self, x: Tensor, rng: np.random.Generator
                ) -> tuple[Tensor, Tensor, Tensor]:
        mu, logvar = self.encode(x)
        z = self.reparameterize(mu, logvar, rng)
        return self.decode(z), mu, logvar


def _kl_divergence(mu: Tensor, logvar: Tensor) -> Tensor:
    """KL(q(z|x) || N(0, I)), averaged over the batch."""
    per_dim = (logvar.exp() + mu * mu - logvar - 1.0) * 0.5
    return per_dim.sum(axis=1).mean()


class VaeImputer(Imputer):
    """Variational-autoencoder imputation for mixed-type rows.

    Parameters
    ----------
    latent_dim, hidden_dim:
        Latent and hidden widths.
    beta:
        KL weight (``beta < 1`` favours reconstruction — useful at the
        small scales this substrate targets).
    """

    NAME = "vae"

    def __init__(self, latent_dim: int = 8, hidden_dim: int = 48,
                 beta: float = 0.1, epochs: int = 120, lr: float = 5e-3,
                 seed: int = 0):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.latent_dim = latent_dim
        self.hidden_dim = hidden_dim
        self.beta = beta
        self.epochs = epochs
        self.lr = lr
        self.seed = seed

    def impute(self, dirty: Table) -> Table:
        from .autoencoder import _RowCodec
        from .neural_common import encode_for_neural

        imputed = dirty.copy()
        missing = dirty.missing_cells()
        if not missing:
            return imputed
        encoded = encode_for_neural(dirty)
        codec = _RowCodec(encoded)
        matrix, mask = codec.encode_rows()

        rng = np.random.default_rng(self.seed)
        model = _Vae(codec.width, self.hidden_dim, self.latent_dim, rng)
        optimizer = Adam(model.parameters(), lr=self.lr)
        x = Tensor(matrix)
        observed = Tensor(mask)

        for _ in range(self.epochs):
            optimizer.zero_grad()
            reconstruction, mu, logvar = model(x, rng)
            reconstruction_loss = mse_loss(reconstruction * observed,
                                           matrix * mask)
            loss = reconstruction_loss + self.beta * _kl_divergence(mu,
                                                                    logvar)
            loss.backward()
            optimizer.step()

        with no_grad():
            # Posterior mean at inference (no sampling noise).
            mu, _ = model.encode(x)
            reconstruction = model.decode(mu).data
        for row, column in missing:
            value = codec.decode_cell(reconstruction[row], column)
            if value is not None:
                imputed.set(row, column, value)
        return imputed
