"""Versioned checkpoints for fitted GRIMP imputers.

A checkpoint is a *directory* (conventionally named ``*.ckpt``) holding
two files:

* ``manifest.json`` — format marker + version, the full
  :class:`~repro.core.GrimpConfig`, the table schema, categorical
  vocabularies, normalizer statistics, and the graph's cell-node index
  (tagged values, so strings/floats/ints/bools round-trip exactly).
* ``arrays.npz`` — every model parameter (``param/<dotted name>``), the
  trained node features, the per-row node-index matrix, and the cached
  message-passing plan's forward CSR operators (``adj/<i>/...``).

Restoring rebuilds the exact inference state: the model skeleton is
reconstructed from the manifest (constant tensors such as attention
``K`` matrices are deterministic functions of the config), cast to the
training dtype, and loaded with the saved parameters; the adjacency
operators are adopted as-is.  A reloaded imputer therefore produces
**byte-identical** imputations for the same new rows — the property the
round-trip tests assert.

The manifest's ``format`` field distinguishes checkpoints from the
experiment-results JSON of :mod:`repro.experiments.persistence`; both
loaders detect the other's files and point the caller at the right API.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .. import __version__
from ..core.config import GrimpConfig
from ..core.trainer import FittedArtifacts, GrimpImputer
from ..data import NumericNormalizer, Table, TableEncoder
from ..fd import FunctionalDependency
from ..gnn import MessagePassingPlan, PlannedOperator
from ..graph.builder import TableGraph
from ..graph.heterograph import CELL, RID, HeteroGraph
from ..nn import Parameter
from ..tensor import Tensor

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint",
           "load_imputer", "checkpoint_bundle", "imputer_from_bundle",
           "CHECKPOINT_FORMAT", "CHECKPOINT_VERSION"]

#: Format marker written into every checkpoint manifest.
CHECKPOINT_FORMAT = "repro-grimp-checkpoint"

#: Current (and only) supported checkpoint format version.
CHECKPOINT_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"


class CheckpointError(ValueError):
    """A checkpoint could not be read: wrong format, wrong version, or a
    structurally broken directory."""


# ----------------------------------------------------------------------
# Tagged JSON values: cell values and vocabulary entries may be strings,
# floats, ints, or bools; a one-letter tag preserves the exact Python
# type through JSON (floats survive via repr round-tripping).
# ----------------------------------------------------------------------
def _tag(value) -> list:
    if isinstance(value, bool):
        return ["b", bool(value)]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, (int, np.integer)):
        return ["i", int(value)]
    if isinstance(value, (float, np.floating)):
        return ["f", float(value)]
    raise TypeError(f"cannot checkpoint value of type {type(value).__name__}")


def _untag(tagged: list):
    kind, value = tagged
    if kind == "b":
        return bool(value)
    if kind == "s":
        return str(value)
    if kind == "i":
        return int(value)
    if kind == "f":
        return float(value)
    raise CheckpointError(f"unknown value tag {kind!r}")


def _config_to_json(config: GrimpConfig) -> dict:
    payload = {
        "feature_strategy": config.feature_strategy,
        "feature_dim": config.feature_dim,
        "train_features": config.train_features,
        "gnn_dim": config.gnn_dim,
        "merge_dim": config.merge_dim,
        "task_kind": config.task_kind,
        "k_strategy": config.k_strategy,
        "fds": [[list(fd.lhs), fd.rhs] for fd in config.fds],
        "augment_fd_edges": config.augment_fd_edges,
        "categorical_loss": config.categorical_loss,
        "epochs": config.epochs,
        "patience": config.patience,
        "validation_fraction": config.validation_fraction,
        "corpus_fraction": config.corpus_fraction,
        "lr": config.lr,
        "batch_size": config.batch_size,
        "gnn_layer_type": config.gnn_layer_type,
        "dtype": config.dtype,
        "mp_plan": config.mp_plan,
        "seed": config.seed,
        "embdi_kwargs": dict(config.embdi_kwargs),
    }
    return payload


def _config_from_json(payload: dict) -> GrimpConfig:
    kwargs = dict(payload)
    kwargs["fds"] = tuple(
        FunctionalDependency(lhs=tuple(lhs), rhs=rhs)
        for lhs, rhs in payload.get("fds", ()))
    kwargs["embdi_kwargs"] = dict(payload.get("embdi_kwargs", {}))
    return GrimpConfig(**kwargs)


def _adjacency_forwards(adjacencies) -> dict[str, "np.ndarray"]:
    """Forward CSR matrix per edge type, whatever the container is."""
    from scipy import sparse
    forwards = {}
    for edge_type in adjacencies:
        matrix = adjacencies[edge_type]
        if isinstance(matrix, PlannedOperator):
            forwards[edge_type] = matrix.forward
        elif sparse.issparse(matrix):
            forwards[edge_type] = matrix.tocsr()
        else:
            raise TypeError(f"cannot checkpoint adjacency of type "
                            f"{type(matrix).__name__}")
    return forwards


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def checkpoint_bundle(imputer: GrimpImputer
                      ) -> tuple[dict, dict[str, np.ndarray]]:
    """The checkpoint of a fitted imputer as in-memory pieces.

    Returns ``(manifest, arrays)`` — exactly what :func:`save_checkpoint`
    writes to disk, without touching the filesystem.  This is the
    transport format of the multi-process serving tier: the dispatch
    layer packs ``arrays`` into shared memory once and every inference
    worker rebuilds the same imputer from attached views via
    :func:`imputer_from_bundle`.
    """
    artifacts = getattr(imputer, "_artifacts", None)
    if artifacts is None:
        raise RuntimeError("impute() must run before save_checkpoint(); "
                           "an unfitted imputer has nothing to persist")

    model = artifacts.model
    table_graph = artifacts.table_graph
    config = imputer.config

    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"param/{name}"] = value
    arrays["features"] = np.asarray(artifacts.feature_tensor.data)
    arrays["node_matrix"] = np.asarray(artifacts.node_matrix,
                                       dtype=np.int64) \
        if artifacts.node_matrix is not None else np.zeros((0, 0), np.int64)
    arrays["rid_nodes"] = np.asarray(table_graph.rid_nodes, dtype=np.int64)

    forwards = _adjacency_forwards(artifacts.adjacencies)
    edge_types = list(forwards)
    for position, edge_type in enumerate(edge_types):
        operator = PlannedOperator(forwards[edge_type])
        for key, value in operator.to_arrays().items():
            arrays[f"adj/{position}/{key}"] = value

    # Attention tasks need an attribute-vector matrix of the right shape
    # at reconstruction; values are overwritten by the parameter load.
    q_shapes = [tuple(value.shape) for name, value in arrays.items()
                if name.startswith("param/tasks.") and name.endswith(".q")]
    attribute_shape = q_shapes[0] if q_shapes \
        else (len(model.columns), config.feature_dim)

    vocabularies = {
        column: [_tag(value) for value in encoder.values]
        for column, encoder in artifacts.encoders.encoders.items()
    }
    cell_nodes = [[column, _tag(value), int(node)]
                  for (column, value), node
                  in table_graph.cell_nodes.items()]

    manifest = {
        "format": CHECKPOINT_FORMAT,
        "format_version": CHECKPOINT_VERSION,
        "repro_version": __version__,
        "dtype": config.dtype,
        "config": _config_to_json(config),
        "columns": list(artifacts.columns),
        "kinds": dict(artifacts.kinds),
        "gnn_edge_types": list(model.gnn_edge_types),
        "adjacency_edge_types": edge_types,
        "train_features": bool(hasattr(model, "node_features")),
        "attribute_shape": list(attribute_shape),
        "fd_related": {column: list(indices) for column, indices
                       in _fd_related(config, artifacts.columns).items()},
        "vocabularies": vocabularies,
        "normalizer": {"means": dict(artifacts.normalizer.means),
                       "stds": dict(artifacts.normalizer.stds)},
        "graph": {
            "n_nodes": int(table_graph.graph.n_nodes),
            "cell_nodes": cell_nodes,
            "columns": list(table_graph.columns),
        },
    }
    return manifest, arrays


def save_checkpoint(imputer: GrimpImputer, path) -> Path:
    """Write a fitted :class:`GrimpImputer` to a checkpoint directory.

    ``path`` is created (parents included) and overwritten if it already
    holds a checkpoint.  Returns the checkpoint path.
    """
    manifest, arrays = checkpoint_bundle(imputer)
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    np.savez(path / _ARRAYS, **arrays)
    (path / _MANIFEST).write_text(json.dumps(manifest, indent=1,
                                             allow_nan=True))
    return path


def _fd_related(config: GrimpConfig,
                columns: list[str]) -> dict[str, list[int]]:
    """Per-column FD-related indices (mirrors the trainer's computation
    so the K matrices rebuild identically)."""
    position = {column: index for index, column in enumerate(columns)}
    related: dict[str, set[int]] = {column: set() for column in columns}
    for fd in config.fds:
        names = [name for name in fd.attributes if name in position]
        for name in names:
            related[name].update(position[other] for other in names
                                 if other != name)
    return {column: sorted(indices) for column, indices in related.items()}


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def _read_manifest(path: Path) -> dict:
    manifest_path = path / _MANIFEST
    if not path.is_dir() or not manifest_path.is_file():
        raise CheckpointError(
            f"{path} is not a checkpoint directory (expected "
            f"{_MANIFEST} + {_ARRAYS}); save one with "
            f"GrimpImputer.save_checkpoint()")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{manifest_path} is not valid JSON: "
                              f"{error}") from error
    if not isinstance(manifest, dict):
        raise CheckpointError(f"{manifest_path} is not a manifest object")
    marker = manifest.get("format")
    if marker == "repro-experiment-results":
        raise CheckpointError(
            f"{manifest_path} holds experiment results, not a model "
            f"checkpoint; load it with repro.experiments.load_results()")
    if marker != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{manifest_path} has format {marker!r}, "
                              f"expected {CHECKPOINT_FORMAT!r}")
    version = manifest.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in "
            f"{manifest_path}; this build reads version "
            f"{CHECKPOINT_VERSION} only")
    return manifest


def _rebuild_graph(manifest: dict, rid_nodes: np.ndarray) -> TableGraph:
    """Reconstruct the table graph's node index (edge lists are not
    stored — inference uses the serialized adjacency operators)."""
    info = manifest["graph"]
    n_nodes = int(info["n_nodes"])
    labels: list[tuple | None] = [None] * n_nodes
    for row, node in enumerate(rid_nodes.tolist()):
        labels[node] = (RID, (RID, row))
    cell_index: dict[tuple, int] = {}
    for column, tagged, node in info["cell_nodes"]:
        value = _untag(tagged)
        labels[int(node)] = (CELL, (CELL, column, value))
        cell_index[(column, value)] = int(node)
    graph = HeteroGraph()
    for node, entry in enumerate(labels):
        if entry is None:
            raise CheckpointError(f"checkpoint graph is missing a label "
                                  f"for node {node}")
        kind, label = entry
        graph.add_node(kind, label)
    return TableGraph(graph=graph, rid_nodes=rid_nodes.tolist(),
                      cell_nodes=cell_index,
                      columns=list(info["columns"]))


def load_checkpoint(path) -> dict:
    """Read a checkpoint into its raw pieces (manifest + arrays).

    Most callers want :func:`load_imputer`; this lower-level entry point
    exists for tooling that inspects checkpoints without instantiating
    a model.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    arrays_path = path / _ARRAYS
    if not arrays_path.is_file():
        raise CheckpointError(f"{path} is missing {_ARRAYS}")
    with np.load(arrays_path, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files}
    return {"manifest": manifest, "arrays": arrays, "path": path}


def load_imputer(path) -> GrimpImputer:
    """Restore a fitted :class:`GrimpImputer` from a checkpoint.

    The returned imputer's :meth:`~GrimpImputer.impute_new_rows` is
    byte-identical to the saved instance's: the model parameters,
    constant tensors, node features, adjacency operators, vocabularies,
    and normalizer statistics all round-trip exactly.
    """
    bundle = load_checkpoint(path)
    return imputer_from_bundle(bundle["manifest"], bundle["arrays"])


def imputer_from_bundle(manifest: dict, arrays: dict,
                        shared_features: bool = False) -> GrimpImputer:
    """Rebuild a fitted imputer from :func:`checkpoint_bundle` pieces.

    ``arrays`` values may be read-only views (e.g. attached shared
    memory): the adjacency CSR components and the per-row node index are
    adopted as-is, zero-copy, so N worker processes rebuilding from one
    shared pack hold one physical copy of those arrays.  With
    ``shared_features`` the node-feature matrix is adopted zero-copy
    too (after the parameter load, which only verifies shapes) — valid
    for inference-only workers, which never write to feature tensors.
    """
    config = _config_from_json(manifest["config"])
    dtype = np.dtype(manifest["dtype"])
    columns = list(manifest["columns"])
    kinds = dict(manifest["kinds"])

    # Schema shim: the model constructor only consumes column names and
    # kinds; a single all-missing row carries both.
    schema = Table({column: [None] for column in columns}, kinds=kinds)

    vocabularies = {column: [_untag(value) for value in values]
                    for column, values in manifest["vocabularies"].items()}
    encoders = TableEncoder.from_vocabularies(vocabularies)
    cardinalities = {column: len(values)
                     for column, values in vocabularies.items()}

    attribute_vectors = np.zeros(tuple(manifest["attribute_shape"]))
    fd_related = {column: list(indices) for column, indices
                  in manifest.get("fd_related", {}).items()}

    from ..core.model import GrimpModel
    model = GrimpModel(schema, cardinalities, attribute_vectors, config,
                       rng=np.random.default_rng(config.seed),
                       fd_related=fd_related,
                       gnn_edge_types=list(manifest["gnn_edge_types"]))

    features = arrays["features"]
    if manifest["train_features"]:
        model.node_features = Parameter(features.copy())
    model.astype(dtype)

    state = {name[len("param/"):]: value for name, value in arrays.items()
             if name.startswith("param/")}
    model.load_state_dict(state)
    model.eval()

    if manifest["train_features"]:
        if shared_features:
            # The load above wrote the same bytes into a private copy;
            # inference-only workers never write feature tensors, so the
            # parameter can point straight at the shared source view.
            model.node_features.data = features
        feature_tensor = model.node_features
    else:
        feature_tensor = Tensor(features.astype(dtype,
                                                copy=not shared_features))

    edge_types = list(manifest["adjacency_edge_types"])
    operators = {}
    for position, edge_type in enumerate(edge_types):
        operators[edge_type] = PlannedOperator.from_arrays({
            key: arrays[f"adj/{position}/{key}"]
            for key in ("data", "indices", "indptr", "shape")})
    adjacencies = MessagePassingPlan.from_operators(operators, dtype=dtype)

    rid_nodes = arrays["rid_nodes"]
    table_graph = _rebuild_graph(manifest, rid_nodes)

    normalizer = NumericNormalizer()
    normalizer.means = {column: float(value) for column, value
                        in manifest["normalizer"]["means"].items()}
    normalizer.stds = {column: float(value) for column, value
                       in manifest["normalizer"]["stds"].items()}
    normalizer._fitted = True

    node_matrix = arrays["node_matrix"]
    if node_matrix.size == 0:
        node_matrix = None

    imputer = GrimpImputer(config)
    imputer.model_ = model
    imputer._artifacts = FittedArtifacts(
        model=model, table_graph=table_graph, adjacencies=adjacencies,
        feature_tensor=feature_tensor, encoders=encoders,
        normalizer=normalizer, columns=columns, kinds=kinds,
        node_matrix=node_matrix)
    return imputer
