"""Opt-in NaN/Inf sanitizer for the autograd engine.

Numerical blowups in self-supervised training do not crash — they
surface epochs later as silently bad imputation accuracy.  With the
sanitizer armed, the engine checks every op's output in the forward
pass and every freshly accumulated gradient in the backward pass; the
*first* non-finite value raises :class:`AnomalyError` naming the op
that produced it, the pass it happened in, and the telemetry span path
active at that moment (``fit/train/epoch/forward`` and friends), so the
blowup is attributed to a specific phase of a specific epoch.

Arming it:

* ``REPRO_ANOMALY=1`` in the environment (read at import), or
* the :class:`detect_anomalies` context manager /
  :func:`set_enabled` for scoped use.

Disabled (the default), the only hot-path cost is one attribute load
and a branch per op — the same contract as the telemetry op counters,
verified by the ``BENCH_hotpath`` smoke gate.
"""

from __future__ import annotations

import os

import numpy as np

from ..telemetry.tracer import current_tracer

__all__ = ["AnomalyError", "ANOMALY", "ANOMALY_ENV", "check_array",
           "current_span_path", "detect_anomalies", "enabled",
           "set_enabled"]

#: Environment variable that arms the sanitizer for a whole process.
ANOMALY_ENV = "REPRO_ANOMALY"


def _env_enabled(value: str | None) -> bool:
    """Parse the ``REPRO_ANOMALY`` environment value."""
    return value is not None and value not in ("", "0", "false")


class AnomalyError(FloatingPointError):
    """A NaN/Inf was produced by an autograd op while the sanitizer
    was armed.

    Attributes
    ----------
    op:
        Name of the op that produced the bad value (``"mul"``,
        ``"pow"``, ``"sparse_matmul"``, ...).  In the backward pass
        this is the op whose backward closure wrote the gradient.
    phase:
        ``"forward"`` or ``"backward"``.
    kind:
        ``"nan"`` or ``"inf"``.
    span_path:
        The ``"/"``-joined telemetry span path active on this thread
        when the value appeared, or ``None`` when no tracer was active.
    """

    def __init__(self, op: str, phase: str, kind: str,
                 span_path: str | None):
        self.op = op
        self.phase = phase
        self.kind = kind
        self.span_path = span_path
        where = f" at span {span_path!r}" if span_path else ""
        super().__init__(
            f"{kind} produced by op {op!r} during {phase}{where}; run "
            f"under `repro trace` or narrow the region with "
            f"detect_anomalies() to localize it further")


class _AnomalyState:
    """The armed/disarmed flag, checked inline by the engine.

    A dedicated object (rather than a module global) so
    ``Tensor._make`` pays exactly one attribute load on the disabled
    path, mirroring :class:`repro.telemetry.registry.OpCounters`.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = False):
        self.enabled = enabled


#: Process-wide sanitizer state, checked inline by ``Tensor._make``
#: and ``Tensor.backward``.
ANOMALY = _AnomalyState(_env_enabled(os.environ.get(ANOMALY_ENV)))


def enabled() -> bool:
    """Whether the sanitizer is currently armed."""
    return ANOMALY.enabled


def set_enabled(flag: bool) -> None:
    """Arm or disarm the sanitizer process-wide."""
    ANOMALY.enabled = bool(flag)


def current_span_path() -> str | None:
    """Span path of the innermost open span on this thread, if any."""
    tracer = current_tracer()
    if tracer is None:
        return None
    stack = tracer._stack()
    return stack[-1].path if stack else None


def check_array(data: np.ndarray, op: str, phase: str) -> None:
    """Raise :class:`AnomalyError` if ``data`` holds a NaN or Inf.

    Non-floating arrays pass trivially.  Called by the engine only when
    :data:`ANOMALY` is armed.
    """
    if data.dtype.kind not in "fc":
        return
    if np.isfinite(data).all():
        return
    kind = "nan" if np.isnan(data).any() else "inf"
    raise AnomalyError(op=op, phase=phase, kind=kind,
                       span_path=current_span_path())


class detect_anomalies:
    """Context manager that arms the sanitizer for a region.

    >>> with detect_anomalies():
    ...     loss = model(batch)
    ...     loss.backward()          # AnomalyError on the first NaN/Inf

    Pass ``enabled=False`` to force it *off* inside a region (e.g. a
    block that intentionally produces infinities).
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self._previous: bool | None = None

    def __enter__(self) -> "detect_anomalies":
        self._previous = ANOMALY.enabled
        ANOMALY.enabled = self._enabled
        return self

    def __exit__(self, exc_type, exc, tb):
        ANOMALY.enabled = self._previous
        return False
