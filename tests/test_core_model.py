"""Tests for the GRIMP model assembly and index-matrix builders."""

import numpy as np
import pytest

from repro.data import MISSING, Table
from repro.graph import build_table_graph
from repro.gnn import column_adjacencies
from repro.core import (
    GrimpConfig,
    GrimpModel,
    SharedLayer,
    build_sample_indices,
    build_row_indices,
    build_training_corpus,
)
from repro.core.corpus import TrainingSample
from repro.tensor import Tensor

RNG = np.random.default_rng(9)


@pytest.fixture
def table():
    return Table({
        "city": ["paris", "rome", MISSING, "paris"],
        "country": ["france", "italy", "france", MISSING],
        "population": [2.1, 2.8, MISSING, 2.2],
    })


@pytest.fixture
def table_graph(table):
    return build_table_graph(table)


def make_model(table, config=None):
    config = config or GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                                   epochs=1)
    cardinalities = {"city": 2, "country": 2}
    attributes = np.random.default_rng(0).standard_normal(
        (table.n_columns, config.feature_dim))
    return GrimpModel(table, cardinalities, attributes, config,
                      np.random.default_rng(0))


class TestSharedLayer:
    def test_output_shape(self, table, table_graph):
        layer = SharedLayer(table.column_names, feature_dim=8, gnn_dim=16,
                            merge_dim=12, rng=RNG)
        adjacencies = column_adjacencies(table_graph)
        n = table_graph.graph.n_nodes
        out = layer(adjacencies, Tensor(RNG.standard_normal((n, 8))))
        assert out.shape == (n, 12)
        assert layer.output_dim == 12


class TestGrimpModel:
    def test_one_task_per_column(self, table):
        model = make_model(table)
        assert set(model.tasks) == set(table.column_names)

    def test_numerical_task_single_output(self, table, table_graph):
        model = make_model(table)
        adjacencies = column_adjacencies(table_graph)
        features = Tensor(RNG.standard_normal(
            (table_graph.graph.n_nodes, 8)))
        h = model.node_representations(adjacencies, features)
        vectors = model.training_vectors(
            h, np.zeros((3, table.n_columns), dtype=np.int64))
        assert model.task_output("population", vectors).shape == (3, 1)
        assert model.task_output("city", vectors).shape == (3, 2)

    def test_node_representations_appends_zero_row(self, table, table_graph):
        model = make_model(table)
        adjacencies = column_adjacencies(table_graph)
        n = table_graph.graph.n_nodes
        h = model.node_representations(
            adjacencies, Tensor(RNG.standard_normal((n, 8))))
        assert h.shape == (n + 1, 8)
        assert np.allclose(h.data[-1], 0.0)

    def test_linear_task_kind(self, table):
        config = GrimpConfig(feature_dim=8, gnn_dim=8, merge_dim=8,
                             task_kind="linear", epochs=1)
        model = make_model(table, config)
        from repro.core import LinearTask
        assert all(isinstance(task, LinearTask)
                   for task in model.tasks.values())


class TestSampleIndices:
    def test_target_column_is_null(self, table, table_graph):
        samples = [TrainingSample(row=0, target_column="city",
                                  target_value="paris")]
        matrix = build_sample_indices(table, table_graph, samples)
        null_index = table_graph.graph.n_nodes
        assert matrix.shape == (1, 3)
        assert matrix[0, 0] == null_index  # city masked
        assert matrix[0, 1] == table_graph.cell_node("country", "france")

    def test_missing_context_is_null(self, table, table_graph):
        samples = [TrainingSample(row=2, target_column="country",
                                  target_value="france")]
        matrix = build_sample_indices(table, table_graph, samples)
        null_index = table_graph.graph.n_nodes
        # Row 2 has missing city and population.
        assert matrix[0, 0] == null_index
        assert matrix[0, 2] == null_index

    def test_gathered_vectors_zero_for_null(self, table, table_graph):
        model = make_model(table)
        adjacencies = column_adjacencies(table_graph)
        n = table_graph.graph.n_nodes
        h = model.node_representations(
            adjacencies, Tensor(RNG.standard_normal((n, 8))))
        samples = [TrainingSample(row=0, target_column="city",
                                  target_value="paris")]
        matrix = build_sample_indices(table, table_graph, samples)
        vectors = model.training_vectors(h, matrix)
        assert vectors.shape == (1, 3, 8)
        assert np.allclose(vectors.data[0, 0], 0.0)
        # Context cells gather the corresponding node representation.
        france = table_graph.cell_node("country", "france")
        assert np.allclose(vectors.data[0, 1], h.data[france])


class TestRowIndices:
    def test_full_row(self, table, table_graph):
        matrix = build_row_indices(table, table_graph, [0])
        assert matrix[0, 0] == table_graph.cell_node("city", "paris")
        assert matrix[0, 1] == table_graph.cell_node("country", "france")

    def test_missing_cells_null(self, table, table_graph):
        matrix = build_row_indices(table, table_graph, [2])
        null_index = table_graph.graph.n_nodes
        assert matrix[0, 0] == null_index
        assert matrix[0, 1] == table_graph.cell_node("country", "france")

    def test_mask_columns(self, table, table_graph):
        matrix = build_row_indices(table, table_graph, [0],
                                   mask_columns=["country"])
        assert matrix[0, 1] == table_graph.graph.n_nodes

    def test_same_vector_for_multi_missing_row(self, table, table_graph):
        # Figure 5: a row with several missing cells produces one vector
        # reused by every task.
        a = build_row_indices(table, table_graph, [2])
        b = build_row_indices(table, table_graph, [2])
        assert np.array_equal(a, b)


class TestCorpusIntegration:
    def test_indices_for_whole_corpus(self, table, table_graph):
        corpus = build_training_corpus(table)
        matrix = build_sample_indices(table, table_graph, corpus)
        assert matrix.shape == (len(corpus), table.n_columns)
        null_index = table_graph.graph.n_nodes
        assert (matrix <= null_index).all()
        assert (matrix >= 0).all()
