"""Factory for the experiment harness's imputer lineup.

Maps algorithm names (as they appear in the paper's figures) to
configured imputers.  Two profiles exist: ``"fast"`` shrinks epochs and
dimensions so the full benchmark grid runs on the numpy substrate in
minutes; ``"paper"`` uses the paper's settings (300 epochs, width 64/128).
EXPERIMENTS.md records which profile produced each reported number.
"""

from __future__ import annotations

from ..baselines import (
    AimNetImputer,
    DenoisingAutoencoderImputer,
    GainImputer,
    VaeImputer,
    DataWigImputer,
    EmbdiMcImputer,
    FdRepairImputer,
    FunForestImputer,
    GnnMcImputer,
    KnnImputer,
    LinkPredictionImputer,
    MiceImputer,
    MissForestImputer,
    ModeMeanImputer,
    TurlImputer,
)
from ..core import GrimpConfig, GrimpImputer
from ..fd import FunctionalDependency
from ..imputation import Imputer

__all__ = ["make_imputer", "ALGORITHMS", "FIGURE8_ALGORITHMS",
           "ABLATION_ALGORITHMS"]

#: The Figure 8/9 lineup: GRIMP variants plus the paper's baselines.
FIGURE8_ALGORITHMS = ("grimp-ft", "grimp-e", "holo", "misf", "turl",
                      "dwig", "embdi-mc")

#: The Figure 10 ablation lineup.
ABLATION_ALGORITHMS = ("grimp-mt", "gnn-mc", "embdi-mc")


def _grimp_config(profile: str, seed: int, **overrides) -> GrimpConfig:
    if profile == "paper":
        base = dict(feature_dim=32, gnn_dim=64, merge_dim=64, epochs=300,
                    patience=10, lr=5e-3, seed=seed)
    else:
        base = dict(feature_dim=16, gnn_dim=24, merge_dim=32, epochs=80,
                    patience=8, lr=1e-2, seed=seed)
    base.update(overrides)
    return GrimpConfig(**base)


def make_imputer(name: str, profile: str = "fast",
                 fds: tuple[FunctionalDependency, ...] = (),
                 seed: int = 0, dtype: str | None = None,
                 batch_size: int | None = None,
                 fanout: int | None = None,
                 dp_shards: int | None = None,
                 dp_workers: int | None = None) -> Imputer:
    """Build a configured imputer by its experiment name.

    Parameters
    ----------
    name:
        One of: ``grimp-ft``, ``grimp-e``, ``grimp-mt`` (alias of
        grimp-ft), ``grimp-linear``, ``grimp-fd`` (weak-diagonal+FD),
        ``holo``, ``misf``, ``funf``, ``fd-repair``, ``turl``, ``dwig``,
        ``embdi-mc``, ``gnn-mc``, ``mice``, ``knn``, ``mode``,
        ``link-pred``, ``dae``, ``gain``, ``vae``.
    profile:
        ``"fast"`` or ``"paper"``.
    fds:
        Functional dependencies for the FD-aware algorithms.
    dtype:
        Training dtype override (``"float32"``/``"float64"``); only the
        GRIMP variants accept it — checkpoints record the dtype a model
        was trained with, so serving reproduces its numerics exactly.
    batch_size / fanout:
        Minibatch/neighbor-sampling knobs (:mod:`repro.sampling`);
        GRIMP variants only.  ``fanout`` requires ``batch_size``; see
        :class:`~repro.core.GrimpConfig`.
    dp_shards / dp_workers:
        Data-parallel training knobs (:mod:`repro.distributed`); GRIMP
        variants only.  ``dp_shards`` requires ``fanout``; results
        depend on the shard count but not on ``dp_workers``.
    """
    if profile not in ("fast", "paper"):
        raise ValueError(f"unknown profile {profile!r}")
    if dtype is not None and not name.startswith("grimp"):
        raise ValueError(f"dtype only applies to grimp-* algorithms, "
                         f"not {name!r}")
    if (batch_size is not None or fanout is not None) and \
            not name.startswith("grimp"):
        raise ValueError(f"batch_size/fanout only apply to grimp-* "
                         f"algorithms, not {name!r}")
    if (dp_shards is not None or dp_workers is not None) and \
            not name.startswith("grimp"):
        raise ValueError(f"dp_shards/dp_workers only apply to grimp-* "
                         f"algorithms, not {name!r}")
    fast = profile == "fast"
    embdi_kwargs = {"epochs": 1, "walks_per_node": 2} if fast \
        else {"epochs": 3, "walks_per_node": 5}
    grimp_overrides = {} if dtype is None else {"dtype": dtype}
    if batch_size is not None:
        grimp_overrides["batch_size"] = batch_size
    if fanout is not None:
        grimp_overrides["fanout"] = fanout
    if dp_shards is not None:
        grimp_overrides["dp_shards"] = dp_shards
    if dp_workers is not None:
        grimp_overrides["dp_workers"] = dp_workers

    if name in ("grimp-ft", "grimp-mt"):
        return GrimpImputer(_grimp_config(profile, seed, **grimp_overrides))
    if name == "grimp-e":
        return GrimpImputer(_grimp_config(profile, seed,
                                          feature_strategy="embdi",
                                          embdi_kwargs=embdi_kwargs,
                                          **grimp_overrides))
    if name == "grimp-linear":
        return GrimpImputer(_grimp_config(profile, seed, task_kind="linear",
                                          **grimp_overrides))
    if name == "grimp-fd":
        return GrimpImputer(_grimp_config(profile, seed,
                                          k_strategy="weak_diagonal_fd",
                                          fds=tuple(fds),
                                          **grimp_overrides))
    if name == "holo":
        return AimNetImputer(dim=12 if fast else 32,
                             epochs=30 if fast else 200, seed=seed)
    if name == "misf":
        return MissForestImputer(n_trees=6 if fast else 20,
                                 max_iterations=2 if fast else 5, seed=seed)
    if name == "funf":
        return FunForestImputer(tuple(fds), n_trees=6 if fast else 20,
                                max_iterations=2 if fast else 5, seed=seed)
    if name == "fd-repair":
        return FdRepairImputer(tuple(fds))
    if name == "turl":
        return TurlImputer(dim=12 if fast else 32,
                           epochs=20 if fast else 120, seed=seed)
    if name == "dwig":
        return DataWigImputer(string_buckets=16 if fast else 64,
                              hidden_dim=16 if fast else 64,
                              epochs=25 if fast else 150, seed=seed)
    if name == "embdi-mc":
        return EmbdiMcImputer(dim=12 if fast else 32,
                              epochs=25 if fast else 150,
                              embdi_kwargs=embdi_kwargs, seed=seed)
    if name == "gnn-mc":
        return GnnMcImputer(feature_dim=8 if fast else 32,
                            gnn_dim=12 if fast else 64,
                            epochs=20 if fast else 150, seed=seed)
    if name == "mice":
        return MiceImputer(max_iterations=3 if fast else 10)
    if name == "knn":
        return KnnImputer(k=5)
    if name == "mode":
        return ModeMeanImputer()
    if name == "dae":
        return DenoisingAutoencoderImputer(hidden_dim=32 if fast else 128,
                                           epochs=40 if fast else 200,
                                           seed=seed)
    if name == "gain":
        return GainImputer(hidden_dim=24 if fast else 64,
                           epochs=60 if fast else 300, seed=seed)
    if name == "vae":
        return VaeImputer(hidden_dim=32 if fast else 96,
                          epochs=80 if fast else 400, seed=seed)
    if name == "link-pred":
        return LinkPredictionImputer(dim=8 if fast else 32,
                                     epochs=15 if fast else 100, seed=seed)
    raise ValueError(f"unknown algorithm {name!r}")


#: Every algorithm name accepted by :func:`make_imputer`.
ALGORITHMS = ("grimp-ft", "grimp-e", "grimp-mt", "grimp-linear", "grimp-fd",
              "holo", "misf", "funf", "fd-repair", "turl", "dwig",
              "embdi-mc", "gnn-mc", "mice", "knn", "mode", "link-pred", "dae",
              "gain", "vae")
