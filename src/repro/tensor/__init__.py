"""Reverse-mode autodiff substrate (numpy-backed) used by every neural
component in the reproduction."""

from .tensor import (Tensor, concat, stack, no_grad, is_grad_enabled,
                     get_default_dtype, set_default_dtype, default_dtype)
from .functional import (
    softmax,
    log_softmax,
    cross_entropy,
    focal_loss,
    mse_loss,
    rmse_loss,
    binary_cross_entropy,
    dropout,
    embedding_lookup,
)
from .gradcheck import gradcheck, numeric_gradient

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "focal_loss",
    "mse_loss",
    "rmse_loss",
    "binary_cross_entropy",
    "dropout",
    "embedding_lookup",
    "gradcheck",
    "numeric_gradient",
]
