"""Quickstart: impute a mixed-type table with GRIMP.

Generates the Adult-style dataset, blanks 20% of the cells completely
at random, trains GRIMP on the dirty table itself (self-supervised —
no clean subset needed), and scores the imputation against the held
ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.corruption import inject_mcar
from repro.core import GrimpConfig, GrimpImputer
from repro.datasets import load
from repro.metrics import evaluate_imputation


def main() -> None:
    # 1. A clean mixed-type relation (9 categorical + 5 numerical cols).
    clean = load("adult", n_rows=400, seed=0)
    print(f"dataset: {clean}")

    # 2. Corrupt it: 20% of cells become missing, uniformly at random.
    corruption = inject_mcar(clean, fraction=0.20,
                             rng=np.random.default_rng(1))
    print(f"injected {corruption.n_injected} missing cells "
          f"({corruption.dirty.missing_fraction():.0%} of the table)")

    # 3. Impute with GRIMP.  The config mirrors the paper's §4.1
    #    defaults (attention tasks, weak-diagonal K, early stopping);
    #    dimensions are scaled to the numpy substrate.
    config = GrimpConfig(feature_dim=16, gnn_dim=24, merge_dim=32,
                         epochs=80, patience=8, lr=1e-2, seed=0)
    imputer = GrimpImputer(config)
    imputed = imputer.impute(corruption.dirty)

    # 4. Score on exactly the injected cells.
    score = evaluate_imputation(corruption, imputed)
    print(f"trained for {len(imputer.history_)} epochs "
          f"in {imputer.train_seconds_:.1f}s")
    print(f"categorical accuracy: {score.accuracy:.3f} "
          f"over {score.n_categorical} cells")
    print(f"numerical RMSE:       {score.rmse:.2f} "
          f"over {score.n_numerical} cells")
    print("per-column accuracy:")
    for column, accuracy in sorted(score.per_column_accuracy.items()):
        print(f"  {column:<16}{accuracy:.3f}")


if __name__ == "__main__":
    main()
