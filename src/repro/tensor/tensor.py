"""A small reverse-mode automatic differentiation engine on top of numpy.

This module is the foundational substrate of the reproduction: the paper's
system (GRIMP) is built on PyTorch, which is not available in this
environment, so we implement the required subset of a deep-learning
framework from scratch.  :class:`Tensor` wraps a ``numpy.ndarray`` and
records the operations applied to it; calling :meth:`Tensor.backward` on a
scalar result propagates gradients to every tensor created with
``requires_grad=True``.

The engine supports full numpy-style broadcasting.  Gradients of broadcast
operands are reduced back to the operand's original shape (the standard
"unbroadcast" rule), which is verified by the numeric gradient checker in
:mod:`repro.tensor.gradcheck`.
"""

from __future__ import annotations

import numpy as np

from ..analysis.anomaly import ANOMALY as _ANOMALY
from ..analysis.anomaly import check_array as _anomaly_check
from ..telemetry.registry import TENSOR_OPS as _TENSOR_OPS
from .arena import WORKSPACE as _WORKSPACE

__all__ = ["Tensor", "no_grad", "is_grad_enabled",
           "get_default_dtype", "set_default_dtype", "default_dtype"]

_GRAD_ENABLED = True

#: Floating dtypes the engine supports.  float64 remains the global
#: default (bit-compatible with the original engine); training code opts
#: into float32 per model via :class:`~repro.core.GrimpConfig`.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))  # repro: noqa[RPR001] -- the engine's dtype registry must name float64

_DEFAULT_DTYPE = np.dtype(np.float64)  # repro: noqa[RPR001] -- bit-compatibility default; training opts into float32 per config


def get_default_dtype() -> np.dtype:
    """Dtype used when coercing non-float data into tensors."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Set the global coercion dtype (``float32`` or ``float64``)."""
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(f"unsupported tensor dtype {dtype!r}; "
                         f"choose float32 or float64")
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved


class default_dtype:
    """Context manager that temporarily changes the default dtype.

    >>> with default_dtype(np.float32):
    ...     t = Tensor([1.0, 2.0])   # float32 storage
    """

    def __init__(self, dtype):
        self._dtype = dtype

    def __enter__(self):
        self._previous = _DEFAULT_DTYPE
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, exc_type, exc, tb):
        set_default_dtype(self._previous)
        return False


class no_grad:
    """Context manager that disables gradient recording.

    Inside a ``with no_grad():`` block, operations on tensors do not build
    the autograd graph, which makes pure inference cheaper.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    When an operand of shape ``shape`` was broadcast to the shape of
    ``grad`` in the forward pass, the chain rule requires summing the
    incoming gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _scratch(shape: tuple[int, ...], dtype) -> np.ndarray:
    """A writable buffer for one kernel result: rented from the active
    workspace when one is armed, freshly allocated otherwise.

    Both paths hand the identical empty buffer shape/dtype to the same
    ufunc call, so pooled and unpooled results are bit-identical by
    construction.
    """
    workspace = _WORKSPACE.active
    if workspace is not None:
        return workspace.rent(shape, dtype)
    return np.empty(shape, dtype=dtype)


def _product(a: np.ndarray, b) -> np.ndarray:
    """``a * b`` into a scratch buffer.

    Backward-closure invariant: ``a`` is the output gradient, which
    already has the broadcast result shape, so the product lands in a
    buffer of ``a``'s shape and dtype.  Mixed float precision falls
    back to numpy's own allocation+promotion.
    """
    if isinstance(b, np.ndarray) and b.dtype != a.dtype \
            and b.dtype.kind != "b":
        return a * b
    return np.multiply(a, b, out=_scratch(a.shape, a.dtype))


def _quotient(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a / b`` into a scratch buffer (same invariant as `_product`)."""
    if b.dtype != a.dtype:
        return a / b
    return np.divide(a, b, out=_scratch(a.shape, a.dtype))


def _negative(a: np.ndarray) -> np.ndarray:
    """``-a`` into a scratch buffer."""
    return np.negative(a, out=_scratch(a.shape, a.dtype))


def _matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b``, marking the GEMM sites of the training hot path.

    GEMM outputs are deliberately *not* rented from the workspace:
    an epoch-scoped pool hands back buffers whose last touch was a
    full epoch ago, and writing a BLAS product into that cache-cold
    memory measured ~20% slower than ``a @ b``, whose allocator
    recycles the step-warm block freed moments earlier.  Pooling pays
    off only for the small, short-lived backward scratches.
    """
    return a @ b


def _as_array(value, dtype=None) -> np.ndarray:
    if dtype is not None:
        resolved = np.dtype(dtype)
        if resolved not in SUPPORTED_DTYPES:
            raise ValueError(f"unsupported tensor dtype {dtype!r}; "
                             f"choose float32 or float64")
        return np.asarray(value, dtype=resolved)
    if isinstance(value, np.ndarray):
        # Floating arrays keep their precision; everything else is
        # coerced to the configured default.
        if value.dtype in SUPPORTED_DTYPES:
            return value
        return value.astype(_DEFAULT_DTYPE)
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


class Tensor:
    """A numpy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a floating numpy array.  Floating input
        arrays keep their precision (``float32`` stays ``float32``);
        other inputs are coerced to the default dtype
        (:func:`get_default_dtype`, ``float64`` unless changed).
    requires_grad:
        If true, gradients accumulate into :attr:`grad` during
        :meth:`backward`.
    dtype:
        Explicit storage dtype (``float32`` or ``float64``) overriding
        the coercion rules above.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "op", "_grad_buffer")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.op = "leaf"
        self._grad_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of zeros in the default dtype."""
        return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE),
                      requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of ones in the default dtype."""
        return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE),
                      requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: np.random.Generator | None = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of normal samples, optionally scaled."""
        rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RPR005] -- documented seedable fallback; callers pass rng
        return Tensor(rng.standard_normal(shape,
                                          dtype=_DEFAULT_DTYPE) * scale,
                      requires_grad=requires_grad)

    @staticmethod
    def ensure(value) -> "Tensor":
        """Coerce ``value`` to a :class:`Tensor` (no-op if already one)."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)  # repro: noqa[RPR002] -- detach() IS the sanctioned graph cut

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the underlying array."""
        return self.data.dtype

    def astype(self, dtype) -> "Tensor":
        """Return a detached copy of this tensor in the given dtype."""
        return Tensor(self.data.astype(np.dtype(dtype), copy=True),
                      requires_grad=self.requires_grad)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...],
              backward, op: str) -> "Tensor":
        out = Tensor(data)
        # Telemetry op/byte dispatch counters.  This is the hottest line
        # in the repository, so the disabled path must stay one attribute
        # load and a branch (see repro.telemetry.registry.OpCounters).
        if _TENSOR_OPS.enabled:
            _TENSOR_OPS.record(op, out.data.nbytes)
        # Opt-in NaN/Inf sanitizer (repro.analysis.anomaly): same
        # one-attribute-load contract as the op counters when disabled.
        if _ANOMALY.enabled:
            _anomaly_check(out.data, op, "forward")
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
            out.op = op
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        if self.grad is None:
            # ``owned`` marks gradients freshly allocated by the calling
            # backward closure (products, reductions) that nothing else
            # references: the first accumulation takes the array itself
            # instead of copying it.  Views of the incoming gradient or
            # of forward data must NOT be donated.
            if owned and grad.shape == self.data.shape and \
                    grad.dtype == self.data.dtype:
                self.grad = grad
                return
            # Otherwise reuse the gradient buffer across zero_grad()/
            # backward() cycles instead of allocating (and copying into)
            # a fresh array on every accumulation.  The buffer has the
            # tensor's own dtype, so mixed-precision gradients are cast
            # back down at the first accumulation; broadcasting views
            # (e.g. from ``sum``'s backward) materialize here.
            buffer = self._grad_buffer
            if buffer is None or buffer.shape != self.data.shape or \
                    buffer.dtype != self.data.dtype:
                workspace = _WORKSPACE.active
                if workspace is not None:
                    # Pooled path: rent per accumulation and leave the
                    # per-tensor cache alone — the rented array returns
                    # to the pool at the next reset(), so caching it
                    # here would alias two owners of one buffer.
                    buffer = workspace.rent(self.data.shape,
                                            self.data.dtype)
                else:
                    buffer = np.empty_like(self.data)
                    self._grad_buffer = buffer
            np.copyto(buffer, grad)
            self.grad = buffer
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Incoming gradient; defaults to ``1.0`` which requires this
            tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)

        # Topological order via iterative DFS (avoids recursion limits on
        # deep graphs such as unrolled training loops).
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        sanitize = _ANOMALY.enabled
        if sanitize:
            _anomaly_check(self.grad, self.op, "backward")
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            parents = node._parents
            node._backward(node.grad)
            if sanitize:
                # Attribute the first bad gradient to the op whose
                # backward closure just wrote it.
                for parent in parents:
                    if parent.grad is not None:
                        _anomaly_check(parent.grad, node.op, "backward")
            # Free intermediate gradients/graph to bound memory use.
            node._backward = None
            node._parents = ()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        # Python scalars stay *weak* (NEP 50): adding 1.0 to a float32
        # tensor must not promote it to float64, which wrapping the
        # scalar in a 0-d Tensor would do.  float() also demotes
        # np.float64 scalars (which subclass float but are "strong").
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            other = float(other)
            out_data = self.data + other

            def backward(grad):
                self._accumulate(grad)

            return self._make(out_data, (self,), backward, "add")
        other = Tensor.ensure(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                g = _unbroadcast(grad, self.shape)
                self._accumulate(g, owned=g is not grad)
            if other.requires_grad:
                g = _unbroadcast(grad, other.shape)
                other._accumulate(g, owned=g is not grad)

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            self._accumulate(_negative(grad), owned=True)

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return self + (-other)
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return (-self) + other
        return Tensor.ensure(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            other = float(other)
            out_data = self.data * other

            def backward(grad):
                self._accumulate(_product(grad, other), owned=True)

            return self._make(out_data, (self,), backward, "mul")
        other = Tensor.ensure(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(_product(grad, other.data), self.shape),
                    owned=True)
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(_product(grad, self.data), other.shape),
                    owned=True)

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return self * (1.0 / other)
        other = Tensor.ensure(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(_quotient(grad, other.data), self.shape),
                    owned=True)
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2),
                                 other.shape), owned=True)

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            other = float(other)
            out_data = other / self.data

            def backward(grad):
                scratch = _negative(grad)
                np.multiply(scratch, out_data, out=scratch)
                np.divide(scratch, self.data, out=scratch)
                self._accumulate(scratch, owned=True)

            return self._make(out_data, (self,), backward, "div")
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward(grad):
            # Same operation sequence as the allocating expression
            # ``grad * exponent * self.data ** (exponent - 1)``.
            scaled = _product(grad, exponent)
            powered = np.power(self.data, exponent - 1,
                               out=_scratch(self.data.shape,
                                            self.data.dtype))
            np.multiply(scaled, powered, out=scaled)
            self._accumulate(scaled, owned=True)

        return self._make(out_data, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad):
            self._accumulate(_product(grad, out_data), owned=True)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad):
            self._accumulate(_quotient(grad, self.data), owned=True)

        return self._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self ** 0.5

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at zero)."""
        out_data = np.abs(self.data)

        def backward(grad):
            signs = np.sign(self.data, out=_scratch(self.data.shape,
                                                    self.data.dtype))
            np.multiply(grad, signs, out=signs)
            self._accumulate(signs, owned=True)

        return self._make(out_data, (self,), backward, "abs")

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = self.data > 0
        out_data = np.multiply(self.data, mask,
                               out=_scratch(self.data.shape,
                                            self.data.dtype))

        def backward(grad):
            self._accumulate(_product(grad, mask), owned=True)

        return self._make(out_data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        """Leaky rectified linear unit."""
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype,
                                                           copy=False)
        out_data = self.data * scale

        def backward(grad):
            self._accumulate(_product(grad, scale), owned=True)

        return self._make(out_data, (self,), backward, "leaky_relu")

    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad):
            # ``grad * (1.0 - out_data ** 2)`` with pooled temporaries.
            scratch = np.power(out_data, 2, out=_scratch(out_data.shape,
                                                         out_data.dtype))
            np.subtract(1.0, scratch, out=scratch)
            np.multiply(grad, scratch, out=scratch)
            self._accumulate(scratch, owned=True)

        return self._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid, computed in a numerically stable way."""
        out_data = np.where(self.data >= 0,
                            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, None))),
                            np.exp(np.clip(self.data, None, 500))
                            / (1.0 + np.exp(np.clip(self.data, None, 500))))

        def backward(grad):
            # ``grad * out_data * (1.0 - out_data)`` with pooled buffers.
            left = _product(grad, out_data)
            right = np.subtract(1.0, out_data,
                                out=_scratch(out_data.shape,
                                             out_data.dtype))
            np.multiply(left, right, out=left)
            self._accumulate(left, owned=True)

        return self._make(out_data, (self,), backward, "sigmoid")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]`` (zero gradient outside)."""
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad):
            self._accumulate(_product(grad, mask), owned=True)

        return self._make(out_data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axis (or all elements)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            # Pass the broadcast view directly: the copy path and the
            # in-place += both broadcast, so no materialization here.
            self._accumulate(np.broadcast_to(g, self.shape))

        return self._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis (or all elements)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axis; gradient flows to the argmax."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out_data, axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split gradient equally among ties to keep backward well defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(mask * g / counts, owned=True)

        return self._make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of the tensor."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        """Permute dimensions; with no arguments reverses them."""
        order = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(order)
        inverse = np.argsort(order)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor."""
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad):
            # fill(0) on a pooled buffer writes the same zeros a fresh
            # ``np.zeros_like`` would, and the scatter-add on top is
            # unchanged — but the (often feature-matrix-sized) buffer
            # is reused across steps instead of reallocated.
            full = _scratch(self.data.shape, self.data.dtype)
            full.fill(0)
            np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        return self._make(out_data, (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other) -> "Tensor":
        """Matrix product supporting batched operands (numpy ``@`` rules)."""
        other = Tensor.ensure(other)
        out_data = _matmul(self.data, other.data)

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.multiply.outer(grad, other.data) if grad.ndim else \
                        grad * other.data
                    self._accumulate(_unbroadcast(np.atleast_2d(g).reshape(self.shape)
                                                  if g.shape != self.shape else g,
                                                  self.shape), owned=True)
                else:
                    g = _matmul(grad, np.swapaxes(other.data, -1, -2))
                    self._accumulate(_unbroadcast(g, self.shape), owned=True)
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.multiply.outer(self.data, grad)
                    other._accumulate(_unbroadcast(g.reshape(other.shape)
                                                   if g.shape != other.shape else g,
                                                   other.shape), owned=True)
                elif other.data.ndim == 1:
                    # (..., k) @ (k,) — flatten the batch dimensions so
                    # the vector gradient is a single gemv.
                    g = self.data.reshape(-1, self.data.shape[-1]).T \
                        @ np.asarray(grad).reshape(-1)
                    other._accumulate(g, owned=True)
                else:
                    g = _matmul(np.swapaxes(self.data, -1, -2), grad)
                    other._accumulate(_unbroadcast(g, other.shape), owned=True)

        return self._make(out_data, (self, other), backward, "matmul")

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    template = tensors[0]
    return template._make(out_data, tuple(tensors), backward, "concat")


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    template = tensors[0]
    return template._make(out_data, tuple(tensors), backward, "stack")
