"""Static analysis and runtime sanitizing for the reproduction.

Three engines, all dependency-free (see ``docs/static-analysis.md``):

* the **lint engine** (:mod:`~repro.analysis.engine`,
  :mod:`~repro.analysis.rules`) — rules ``RPR001``–``RPR010`` for
  project invariants no generic linter knows (float32 hot path, gated
  telemetry, serve-only threading, seeded model code), with
  per-line ``repro: noqa`` suppressions and JSON reports, plus the
  interprocedural passes (:mod:`~repro.analysis.summaries`,
  :mod:`~repro.analysis.callgraph`, :mod:`~repro.analysis.taint`)
  behind rules ``RPR007``–``RPR010`` (fork safety, shared-memory write
  safety, RNG provenance, resource lifecycle) and the incremental
  lint cache (:mod:`~repro.analysis.cache`);
* the **graph checker** (:mod:`~repro.analysis.graphcheck`) — abstract
  shape/dtype interpretation over message-passing plans, module trees,
  and checkpoint manifests, without running a forward pass;
* the **anomaly sanitizer** (:mod:`~repro.analysis.anomaly`) — an
  opt-in runtime mode (``REPRO_ANOMALY=1`` or
  :class:`~repro.analysis.anomaly.detect_anomalies`) that attributes
  the first NaN/Inf of a run to the op and telemetry span path that
  produced it.

Everything is wired into the ``repro lint`` CLI, ``make lint``, and a
blocking CI step.

NOTE: this package is imported by :mod:`repro.tensor` (the sanitizer
hook), so its module-level imports must stay standard-library + numpy
and must not import other ``repro`` packages eagerly.
"""

from .anomaly import (
    ANOMALY_ENV,
    AnomalyError,
    check_array,
    detect_anomalies,
)
from .anomaly import enabled as anomaly_enabled
from .anomaly import set_enabled as set_anomaly_enabled
from .cache import CACHE_ENV as LINT_CACHE_ENV
from .cache import LintCache
from .engine import (
    LINT_SCHEMA,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
    module_of,
    render_github,
    render_text,
    report_json,
    write_report,
)
from .graphcheck import (
    PlanProblem,
    check_checkpoint,
    check_module,
    check_operators,
    check_plan,
)

__all__ = [
    "ANOMALY_ENV",
    "AnomalyError",
    "Finding",
    "LINT_CACHE_ENV",
    "LINT_SCHEMA",
    "LintCache",
    "PlanProblem",
    "ProjectRule",
    "Rule",
    "all_rules",
    "anomaly_enabled",
    "check_array",
    "check_checkpoint",
    "check_module",
    "check_operators",
    "check_plan",
    "detect_anomalies",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "module_of",
    "render_github",
    "render_text",
    "report_json",
    "set_anomaly_enabled",
    "write_report",
]
