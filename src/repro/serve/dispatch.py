"""Dispatch layer of the multi-process serving tier.

The :class:`Dispatcher` sits between the HTTP front-end and N pre-fork
inference workers (:mod:`repro.serve.workers`):

* **one physical model copy** — the checkpoint arrays plus the pinned
  node representations are packed into shared memory once
  (:class:`repro.parallel.SharedArrays`); every worker attaches
  zero-copy read-only views.
* **admission control** — at most ``max_queue_depth`` requests may be
  in flight; beyond that :meth:`submit` raises :class:`QueueFull`
  immediately (the HTTP layer maps it to ``429 Retry-After``), so an
  overloaded service degrades by shedding load instead of by growing an
  unbounded queue until every request times out.
* **least-loaded assignment** — each accepted request goes to the
  ready worker with the fewest outstanding requests; the worker's own
  micro-batcher coalesces whatever lands on it.
* **health supervision** — a supervisor thread watches worker
  processes.  A crashed worker's in-flight requests are rejected
  promptly with :class:`WorkerCrashed` (never left hanging) and the
  worker is respawned against the same shared pack.  Results travel
  over a private pipe per worker (one writer), so a worker killed
  mid-send cannot leak a lock shared with its siblings — the pipe's
  EOF is also how the worker's collector thread winds down.
* **graceful drain** — :meth:`stop` stops admitting, waits for every
  accepted request to finish, then shuts the workers down via FIFO
  sentinels: no accepted request is lost.

Lock discipline: one lock guards the in-flight table, the worker
slots, and the readiness condition.  It is never held while waiting
for a request result or joining a process; per-request waiters block
on their own events.
"""

from __future__ import annotations

import itertools
import threading
import time

from ..parallel import SharedArrays, pool_context, start_worker
from ..telemetry import Tracer, counter, gauge
from .engine import InferenceEngine
from .workers import DEFAULT_WORKER_THREADS, shared_bundle, worker_main

__all__ = ["Dispatcher", "QueueFull", "WorkerCrashed", "DispatcherStopped"]

#: Exception class names a worker reports that map back to client
#: errors (HTTP 400) rather than server faults.
_CLIENT_ERRORS = ("ValueError", "KeyError", "TypeError")

#: How often the supervisor polls worker liveness, seconds.
SUPERVISE_INTERVAL = 0.05


class QueueFull(RuntimeError):
    """The bounded request queue is full; retry after a short backoff."""

    def __init__(self, depth: int, retry_after: float = 1.0):
        super().__init__(f"request queue is full ({depth} in flight); "
                         f"retry after {retry_after:g}s")
        self.retry_after = retry_after


class WorkerCrashed(RuntimeError):
    """The worker holding this request died before answering."""


class DispatcherStopped(RuntimeError):
    """Raised by :meth:`Dispatcher.submit` after :meth:`Dispatcher.stop`."""


class _Pending:
    """One accepted request: its waiter event and result slot."""

    __slots__ = ("worker_id", "event", "result", "error")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None

    def resolve(self, result) -> None:
        self.result = result
        self.event.set()

    def reject(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class _Slot:
    """One worker position: its process, inbox, and counters."""

    __slots__ = ("worker_id", "process", "inbox", "reader", "collector",
                 "pid", "ready", "stopped", "restarts", "dispatched",
                 "completed", "errors", "batches", "batched_rows")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.inbox = None
        self.reader = None
        self.collector = None
        self.pid: int | None = None
        self.ready = False
        self.stopped = False
        self.restarts = 0
        self.dispatched = 0
        self.completed = 0
        self.errors = 0
        self.batches = 0
        self.batched_rows = 0

    def outstanding(self) -> int:
        return self.dispatched - self.completed - self.errors

    def stats(self) -> dict:
        alive = self.process is not None and self.process.is_alive()
        return {
            "worker": self.worker_id,
            "pid": self.pid,
            "alive": alive,
            "ready": self.ready,
            "restarts": self.restarts,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "errors": self.errors,
            "outstanding": self.outstanding(),
            "batches": self.batches,
            "batched_rows": self.batched_rows,
            "mean_batch_size": (self.batched_rows / self.batches)
            if self.batches else 0.0,
        }


class Dispatcher:
    """Pre-fork worker tier behind a bounded request queue.

    Parameters
    ----------
    engine:
        A pinned (or pinnable) :class:`InferenceEngine`; its checkpoint
        and pinned representations become the shared read-only pack.
    workers:
        Number of inference worker processes (>= 1).
    max_queue_depth:
        Admission bound on concurrently in-flight requests.
    max_batch_size, max_delay_ms:
        Per-worker micro-batching policy.
    worker_threads:
        Feeder threads per worker (concurrent requests that can
        coalesce in one worker's batcher).
    respawn:
        Respawn crashed workers (disable in tests that assert on death).
    tracer:
        Optional aggregate tracer; dispatch spans land under
        ``dispatch.submit``.
    """

    def __init__(self, engine: InferenceEngine, workers: int,
                 max_queue_depth: int = 64, max_batch_size: int = 32,
                 max_delay_ms: float = 5.0,
                 worker_threads: int = DEFAULT_WORKER_THREADS,
                 respawn: bool = True, row_timeout: float = 30.0,
                 tracer: Tracer | None = None):
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.n_workers = workers
        self.max_queue_depth = int(max_queue_depth)
        self.max_batch_size = int(max_batch_size)
        self.max_delay_ms = float(max_delay_ms)
        self.worker_threads = int(worker_threads)
        self.respawn = bool(respawn)
        self.row_timeout = float(row_timeout)
        self.tracer = tracer if tracer is not None else Tracer(max_spans=0)

        manifest, arrays = shared_bundle(engine)
        self._manifest = manifest
        self._context = pool_context()
        self._pack = SharedArrays(arrays)

        self._lock = threading.Lock()
        self._state_changed = threading.Condition(self._lock)
        self._inflight: dict[int, _Pending] = {}
        self._ids = itertools.count(1)
        self._stopping = False
        self._stopped = False
        self._rejected_full = 0
        self._crashed_requests = 0
        self._late_results = 0

        self._slots = [_Slot(worker_id) for worker_id in range(workers)]
        for slot in self._slots:
            self._spawn(slot)

        self._supervisor = threading.Thread(target=self._supervise,
                                            name="repro-dispatch-supervise",
                                            daemon=True)
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: _Slot) -> None:
        slot.inbox = self._context.Queue()
        reader, writer = self._context.Pipe(duplex=False)
        slot.ready = False
        slot.stopped = False
        slot.process = start_worker(
            worker_main,
            args=(slot.worker_id, self._manifest, slot.inbox, writer,
                  self.max_batch_size, self.max_delay_ms / 1e3,
                  self.worker_threads, self.row_timeout),
            pack=self._pack, context=self._context,
            name=f"repro-serve-worker-{slot.worker_id}")
        # Drop the parent's copy of the write end: the worker now holds
        # the only one, so its death — clean or SIGKILL — delivers EOF
        # to the collector below.
        writer.close()
        slot.pid = slot.process.pid
        slot.reader = reader
        slot.collector = threading.Thread(
            target=self._collect, args=(reader,),
            name=f"repro-dispatch-collect-{slot.worker_id}", daemon=True)
        slot.collector.start()

    def _handle_crash(self, slot: _Slot) -> None:
        counter("serve.dispatch.worker_crashes").inc()
        with self._lock:
            slot.ready = False
            doomed = [(request_id, pending)
                      for request_id, pending in self._inflight.items()
                      if pending.worker_id == slot.worker_id]
            for request_id, _ in doomed:
                del self._inflight[request_id]
            self._crashed_requests += len(doomed)
            slot.errors += len(doomed)
            slot.restarts += 1
            self._set_depth_gauge_locked()
            respawn = self.respawn and not self._stopping
            self._state_changed.notify_all()
        error = WorkerCrashed(
            f"inference worker {slot.worker_id} (pid {slot.pid}) died "
            f"while the request was in flight")
        for _, pending in doomed:
            pending.reject(error)
        # The dead worker's collector has hit (or will promptly hit)
        # EOF; join it and release the read end before reusing the slot.
        if slot.collector is not None:
            slot.collector.join(5.0)
        if slot.reader is not None:
            slot.reader.close()
        if respawn:
            self._spawn(slot)

    def _supervise(self) -> None:
        while True:
            with self._lock:
                if self._stopped:
                    return
                stopping = self._stopping
                crashed = [slot for slot in self._slots
                           if slot.process is not None
                           and not slot.process.is_alive()
                           and not slot.stopped]
            for slot in crashed:
                # During a drain a worker exiting after its sentinel is
                # normal; _handle_crash still rejects whatever it left.
                if not stopping or slot.outstanding() > 0:
                    self._handle_crash(slot)
            time.sleep(SUPERVISE_INTERVAL)

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------
    def _collect(self, reader) -> None:
        """Drain one worker's result pipe until it closes (EOF).

        EOF arrives on clean shutdown (after ``"stopped"``) and on any
        crash — the supervisor owns rejection and respawn, this thread
        just stops reading.  One collector per worker means a wedged or
        dead worker never stalls its siblings' results.
        """
        while True:
            try:
                message = reader.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "ready":
                _, worker_id, pid = message
                with self._lock:
                    slot = self._slots[worker_id]
                    slot.ready = True
                    slot.pid = pid
                    self._state_changed.notify_all()
            elif kind == "result":
                _, worker_id, request_id, rows = message
                pending = self._finish(worker_id, request_id, error=False)
                if pending is not None:
                    pending.resolve(rows)
            elif kind == "error":
                _, worker_id, request_id, error_kind, text = message
                if request_id is None:
                    continue  # warmup failure; supervisor handles death
                pending = self._finish(worker_id, request_id, error=True)
                if pending is not None:
                    if error_kind in _CLIENT_ERRORS:
                        pending.reject(ValueError(text))
                    else:
                        pending.reject(RuntimeError(
                            f"worker {worker_id} failed: "
                            f"{error_kind}: {text}"))
            elif kind == "batch":
                _, worker_id, size = message
                with self._lock:
                    slot = self._slots[worker_id]
                    slot.batches += 1
                    slot.batched_rows += size
                if self.on_batch is not None:
                    try:
                        self.on_batch(size)
                    except Exception:
                        pass  # metrics must never take down the collector
            elif kind == "stopped":
                _, worker_id = message
                with self._lock:
                    self._slots[worker_id].stopped = True
                    self._slots[worker_id].ready = False
                    self._state_changed.notify_all()

    #: Optional ``callable(batch_size)`` invoked per worker batch
    #: (wired to :meth:`ServingMetrics.record_batch` by the server).
    on_batch = None

    def _finish(self, worker_id: int, request_id: int,
                error: bool) -> _Pending | None:
        with self._lock:
            pending = self._inflight.pop(request_id, None)
            slot = self._slots[worker_id]
            if error:
                slot.errors += 1
            else:
                slot.completed += 1
            if pending is None:
                self._late_results += 1
            self._set_depth_gauge_locked()
            self._state_changed.notify_all()
        return pending

    def _set_depth_gauge_locked(self) -> None:
        gauge("serve.dispatch.queue_depth").set(len(self._inflight))

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _pick_slot_locked(self) -> _Slot | None:
        candidates = [slot for slot in self._slots
                      if slot.ready and slot.process is not None
                      and slot.process.is_alive()]
        if not candidates:
            return None
        return min(candidates, key=_Slot.outstanding)

    def submit(self, rows: list[dict], timeout: float | None = 30.0) -> list:
        """Impute ``rows`` on some worker; block until the answer.

        Raises :class:`QueueFull` when the admission bound is hit,
        :class:`WorkerCrashed` when the assigned worker dies mid-flight,
        ``ValueError`` for worker-reported client errors, and
        ``TimeoutError`` when no answer arrives in ``timeout`` seconds.
        """
        counter("serve.dispatch.requests").inc()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.tracer.span("dispatch.submit", rows=len(rows)) as span:
            pending, request_id = self._admit(rows, deadline)
            span.set(worker=pending.worker_id)
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            if not pending.event.wait(remaining):
                with self._lock:
                    self._inflight.pop(request_id, None)
                    self._set_depth_gauge_locked()
                span.set(outcome="timeout")
                raise TimeoutError(f"no imputation within {timeout}s")
            if pending.error is not None:
                span.set(outcome="error")
                raise pending.error
            span.set(outcome="ok")
            return pending.result

    def _admit(self, rows: list[dict],
               deadline: float | None) -> tuple[_Pending, int]:
        with self._lock:
            if self._stopping:
                raise DispatcherStopped("the dispatcher has been stopped")
            if len(self._inflight) >= self.max_queue_depth:
                self._rejected_full += 1
                counter("serve.dispatch.rejected_full").inc()
                raise QueueFull(len(self._inflight))
            slot = self._pick_slot_locked()
            while slot is None:
                # All workers warming or respawning: wait for readiness
                # instead of failing requests during a restart window.
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("no worker became ready in time")
                if not self._state_changed.wait(
                        remaining if remaining is not None
                        else SUPERVISE_INTERVAL * 4):
                    if deadline is not None:
                        raise TimeoutError("no worker became ready in time")
                if self._stopping:
                    raise DispatcherStopped(
                        "the dispatcher has been stopped")
                slot = self._pick_slot_locked()
            request_id = next(self._ids)
            pending = _Pending(slot.worker_id)
            self._inflight[request_id] = pending
            slot.dispatched += 1
            self._set_depth_gauge_locked()
            # Enqueue under the lock: the crash handler also runs under
            # it, so a request is either visibly in flight (and gets
            # rejected on crash) or not yet assigned — never silently
            # parked on a dead worker's queue.
            slot.inbox.put((request_id, rows))
        return pending, request_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently in flight (admitted, not yet answered)."""
        with self._lock:
            return len(self._inflight)

    @property
    def ready_count(self) -> int:
        """Workers that have warmed up (attached + probe batch served)."""
        with self._lock:
            return sum(1 for slot in self._slots if slot.ready)

    @property
    def all_ready(self) -> bool:
        """Whether every worker has warmed up."""
        return self.ready_count == self.n_workers

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until every worker warmed (or ``timeout``); returns
        whether they all did."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while sum(1 for slot in self._slots if slot.ready) \
                    < self.n_workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._state_changed.wait(remaining)
        return True

    def stats(self) -> dict:
        """Dispatch-layer counters for ``GET /metrics``."""
        with self._lock:
            per_worker = [slot.stats() for slot in self._slots]
            depth = len(self._inflight)
            rejected = self._rejected_full
            crashed = self._crashed_requests
            late = self._late_results
        return {
            "workers": self.n_workers,
            "ready_workers": sum(1 for entry in per_worker
                                 if entry["ready"]),
            "queue_depth": depth,
            "max_queue_depth": self.max_queue_depth,
            "rejected_queue_full": rejected,
            "crashed_requests": crashed,
            "late_results": late,
            "restarts": sum(entry["restarts"] for entry in per_worker),
            "per_worker": per_worker,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the tier; with ``drain`` every accepted request finishes.

        Idempotent.  Admission stops immediately (:meth:`submit` raises
        :class:`DispatcherStopped`); with ``drain`` the call then waits
        for the in-flight table to empty before sending each worker its
        FIFO shutdown sentinel, so accepted work is never dropped.
        """
        with self._lock:
            if self._stopped:
                return
            already_stopping = self._stopping
            self._stopping = True
            self._state_changed.notify_all()
        if already_stopping:
            return
        deadline = time.monotonic() + timeout
        if drain:
            with self._lock:
                while self._inflight and time.monotonic() < deadline:
                    self._state_changed.wait(
                        max(0.01, deadline - time.monotonic()))
        # Anything still pending (drain timeout or drain=False) is
        # rejected, never left hanging.
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
            self._set_depth_gauge_locked()
        for pending in leftovers:
            pending.reject(DispatcherStopped(
                "dispatcher stopped before the request completed"))
        for slot in self._slots:
            if slot.inbox is not None:
                slot.inbox.put(None)
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(max(0.1, deadline - time.monotonic()))
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(5.0)
        # Collectors exit on their pipe's EOF, which the worker's death
        # (clean or otherwise) has just delivered.
        for slot in self._slots:
            if slot.collector is not None:
                slot.collector.join(5.0)
            if slot.reader is not None:
                slot.reader.close()
        with self._lock:
            self._stopped = True
        self._supervisor.join(SUPERVISE_INTERVAL * 4 + 1.0)
        self._pack.close()
