"""Named counters and gauges, plus the tensor-op dispatch counters.

The registry is the *numbers* half of the telemetry subsystem (spans
are the *time* half): monotonically increasing :class:`Counter` values
(plan-cache hits/misses, sparse conversions, batches flushed) and
point-in-time :class:`Gauge` values.  A process-wide default registry
(:func:`get_registry`) is what the instrumented modules write to and
what ``GET /metrics`` and run manifests snapshot.

Tensor-op counting is special-cased in :class:`OpCounters` because it
sits on the hottest path in the repository — every autograd op ends in
``Tensor._make``.  The counter object exposes a plain ``enabled``
attribute the engine checks inline; when false (the default) the only
cost per op is one attribute load and a branch.
"""

from __future__ import annotations

import threading  # repro: noqa[RPR004] -- telemetry owns its own locks; serve-layer rule does not apply

__all__ = ["Counter", "Gauge", "MetricsRegistry", "OpCounters",
           "get_registry", "counter", "gauge", "TENSOR_OPS"]


class Counter:
    """A monotonically increasing named value.

    Increments are plain integer adds under the GIL — the occasional
    lost update under free-threaded builds is acceptable for telemetry;
    correctness-critical counts belong in return values, not metrics.
    """

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter (test/bench helper)."""
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that can move in both directions."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class MetricsRegistry:
    """Get-or-create store of named counters and gauges."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge, description)

    def _get(self, name, kind, description):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, description)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(f"{name!r} is already registered as a "
                                f"{type(metric).__name__}")
            return metric

    def snapshot(self) -> dict[str, float]:
        """Point-in-time ``{name: value}`` of every registered metric."""
        with self._lock:
            return {name: metric.value
                    for name, metric in sorted(self._metrics.items())}

    def reset(self) -> None:
        """Zero every registered metric (test/bench helper)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()


class OpCounters:
    """Per-op-name dispatch and byte counters for the autograd engine.

    Disabled by default; :func:`repro.telemetry.set_enabled` flips
    :attr:`enabled`, which ``Tensor._make`` checks inline.  ``record``
    tolerates racing threads (counts are best-effort telemetry).
    """

    __slots__ = ("enabled", "ops", "bytes")

    def __init__(self):
        self.enabled = False
        self.ops: dict[str, int] = {}
        self.bytes: dict[str, int] = {}

    def record(self, op: str, nbytes: int) -> None:
        """Count one dispatch of ``op`` producing ``nbytes`` of output."""
        self.ops[op] = self.ops.get(op, 0) + 1
        self.bytes[op] = self.bytes.get(op, 0) + nbytes

    def snapshot(self) -> dict[str, dict[str, int]]:
        """``{"ops": {...}, "bytes": {...}, "total_ops", "total_bytes"}``."""
        ops = dict(self.ops)
        nbytes = dict(self.bytes)
        return {"ops": ops, "bytes": nbytes,
                "total_ops": sum(ops.values()),
                "total_bytes": sum(nbytes.values())}

    def reset(self) -> None:
        """Forget all op counts (test/bench helper)."""
        self.ops = {}
        self.bytes = {}


#: Process-wide tensor-op counters, checked inline by ``Tensor._make``.
TENSOR_OPS = OpCounters()

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, description: str = "") -> Counter:
    """Shorthand for ``get_registry().counter(...)``."""
    return _REGISTRY.counter(name, description)


def gauge(name: str, description: str = "") -> Gauge:
    """Shorthand for ``get_registry().gauge(...)``."""
    return _REGISTRY.gauge(name, description)
