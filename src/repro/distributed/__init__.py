"""Data-parallel GNN training over the shared-memory worker pool.

Layer 12: the minibatch schedule PR'd in :mod:`repro.sampling` is
already bit-deterministic and its :class:`~repro.sampling.FrozenGraph`
arrays are already shared-memory friendly — this package shards each
epoch across long-lived :class:`repro.parallel.ShardPool` workers and
reduces the per-shard step results with sample-weighted averaging:

* :mod:`repro.distributed.shard` — the per-batch training step
  (sample -> compile -> forward -> backward -> step), shared verbatim
  between the serial sampled path and the shard workers so parity is
  structural;
* :mod:`repro.distributed.worker` — worker-side init (model skeleton
  rebuilt from a picklable spec, graph attached via shared memory,
  private :class:`~repro.sampling.SubgraphPlanCache`) and the
  per-shard task function;
* :mod:`repro.distributed.coordinator` —
  :class:`DataParallelTrainer`: per-epoch broadcast, ordered shard
  dispatch, and the fixed-order float64 weighted reduce that makes
  results bit-identical for every worker count at fixed ``dp_shards``.

Alongside :mod:`repro.serve` and :mod:`repro.parallel`, this is a
sanctioned concurrency owner (lint rule RPR004) — it coordinates the
pool directly instead of describing one-shot shard plans.

Entry points: ``GrimpConfig(dp_shards=..., dp_workers=...)`` or
``repro impute --dp-shards N --dp-workers W``.
"""

from .coordinator import DataParallelTrainer
from .shard import (PHASES, batch_loss, sample_batch, subgraph_vectors,
                    train_shard)

__all__ = [
    "DataParallelTrainer",
    "PHASES",
    "batch_loss",
    "sample_batch",
    "subgraph_vectors",
    "train_shard",
]
