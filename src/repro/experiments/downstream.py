"""Downstream-task evaluation of imputation quality.

The paper's introduction motivates imputation by its effect on
downstream analysis: "any analysis performed on the incomplete data
would produce biased estimates ... It can also affect the downstream
applications, such as machine learning".  This module quantifies that
effect: train a random-forest classifier to predict a label column from
the other attributes, on (a) the clean table, (b) the dirty table with
rows containing missing values dropped, and (c) each imputer's output —
then compare held-out accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import encode_matrix
from ..data import MISSING, Table
from ..forest import RandomForest
from ..imputation import Imputer

__all__ = ["DownstreamResult", "downstream_accuracy", "compare_downstream"]


@dataclass(frozen=True)
class DownstreamResult:
    """Held-out classifier accuracy for one training-table variant."""

    variant: str
    accuracy: float
    n_train_rows: int


def _split_indices(n: int, test_fraction: float,
                   rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    permutation = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    return permutation[n_test:], permutation[:n_test]


def downstream_accuracy(train_table: Table, test_table: Table,
                        label_column: str, n_trees: int = 8,
                        seed: int = 0) -> float:
    """Accuracy of a forest trained on ``train_table`` and evaluated on
    ``test_table`` (both complete over the label column)."""
    if label_column not in train_table.column_names:
        raise KeyError(f"unknown label column {label_column!r}")
    if not train_table.is_categorical(label_column):
        raise ValueError("downstream task expects a categorical label")
    matrix, encoders = encode_matrix(train_table)
    label_index = train_table.column_names.index(label_column)
    feature_indices = [index for index in range(train_table.n_columns)
                       if index != label_index]
    x_train = np.nan_to_num(matrix[:, feature_indices], nan=0.0)
    y_train = matrix[:, label_index]
    observed = ~np.isnan(y_train)
    if observed.sum() < 2 or np.unique(y_train[observed]).size < 2:
        return float("nan")
    forest = RandomForest(task="classification", n_trees=n_trees,
                          max_depth=8, seed=seed)
    forest.fit(x_train[observed], y_train[observed].astype(np.int64))

    test_matrix, _ = encode_matrix(test_table, encoders=encoders)
    x_test = np.nan_to_num(test_matrix[:, feature_indices], nan=0.0)
    y_test = test_matrix[:, label_index]
    mask = ~np.isnan(y_test)
    if not mask.any():
        return float("nan")
    predictions = forest.predict(x_test[mask])
    return float((predictions == y_test[mask].astype(np.int64)).mean())


def compare_downstream(clean: Table, dirty: Table,
                       imputers: dict[str, Imputer], label_column: str,
                       test_fraction: float = 0.3,
                       seed: int = 0) -> list[DownstreamResult]:
    """Compare downstream accuracy across training-data variants.

    Variants evaluated, all against the same clean held-out test rows:

    * ``clean`` — upper bound (train on the uncorrupted table);
    * ``drop-dirty-rows`` — the "wasteful approach" of the paper's
      introduction: discard any training row containing a missing cell;
    * one entry per supplied imputer — train on its imputed table.
    """
    rng = np.random.default_rng(seed)
    train_index, test_index = _split_indices(clean.n_rows, test_fraction,
                                             rng)
    test_table = clean.select_rows(test_index)
    results: list[DownstreamResult] = []

    clean_train = clean.select_rows(train_index)
    results.append(DownstreamResult(
        "clean", downstream_accuracy(clean_train, test_table, label_column,
                                     seed=seed),
        clean_train.n_rows))

    dirty_train = dirty.select_rows(train_index)
    complete_rows = [row for row in range(dirty_train.n_rows)
                     if not any(dirty_train.get(row, column) is MISSING
                                for column in dirty_train.column_names)]
    if complete_rows:
        dropped = dirty_train.select_rows(complete_rows)
        accuracy = downstream_accuracy(dropped, test_table, label_column,
                                       seed=seed)
    else:
        accuracy = float("nan")
    results.append(DownstreamResult("drop-dirty-rows", accuracy,
                                    len(complete_rows)))

    for name, imputer in imputers.items():
        imputed_train = imputer.impute(dirty_train)
        results.append(DownstreamResult(
            name, downstream_accuracy(imputed_train, test_table,
                                      label_column, seed=seed),
            imputed_train.n_rows))
    return results
