"""MICE [48]: multivariate imputation by chained equations.

A lighter-weight iterative baseline than MissForest: each column is
modelled from the others with ridge-regularized least squares
(regression for numericals; one-vs-rest linear scoring for
categoricals), cycling until the imputations stabilize.  The paper
discusses MICE as the classical multiple-imputation representative
whose per-column models "learn the imputation without sharing the
commonalities".
"""

from __future__ import annotations

import numpy as np

from ..data import MISSING, Table
from ..imputation import Imputer
from .featurize import encode_matrix
from .simple import ModeMeanImputer

__all__ = ["MiceImputer"]


def _ridge_fit(x: np.ndarray, y: np.ndarray, alpha: float) -> np.ndarray:
    """Closed-form ridge regression with bias (last weight)."""
    design = np.hstack([x, np.ones((x.shape[0], 1))])
    gram = design.T @ design + alpha * np.eye(design.shape[1])
    return np.linalg.solve(gram, design.T @ y)


def _ridge_predict(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    design = np.hstack([x, np.ones((x.shape[0], 1))])
    return design @ weights


class MiceImputer(Imputer):
    """Chained-equation imputation with linear models."""

    NAME = "mice"

    def __init__(self, max_iterations: int = 5, alpha: float = 1.0,
                 tolerance: float = 1e-3):
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.alpha = alpha
        self.tolerance = tolerance
        self.n_iterations_ = 0

    def impute(self, dirty: Table) -> Table:
        missing_mask = dirty.missing_mask()
        if not missing_mask.any():
            return dirty.copy()
        current = ModeMeanImputer().impute(dirty)
        matrix, encoders = encode_matrix(current)
        matrix = np.nan_to_num(matrix, nan=0.0)
        columns = list(dirty.column_names)

        # Standardize features once per sweep for conditioning.
        self.n_iterations_ = 0
        for iteration in range(self.max_iterations):
            previous = matrix.copy()
            means = matrix.mean(axis=0)
            stds = matrix.std(axis=0)
            stds[stds < 1e-12] = 1.0
            standardized = (matrix - means) / stds
            for target_index, column in enumerate(columns):
                mask = missing_mask[:, target_index]
                observed = ~mask
                if observed.sum() < 2 or mask.sum() == 0:
                    continue
                features = np.delete(standardized, target_index, axis=1)
                if dirty.is_categorical(column):
                    labels = matrix[observed, target_index].astype(np.int64)
                    classes = np.unique(labels)
                    if classes.size < 2:
                        continue
                    # One-vs-rest linear scoring.
                    scores = np.zeros((int(mask.sum()), classes.size))
                    for class_position, label in enumerate(classes):
                        target = (labels == label).astype(float)
                        weights = _ridge_fit(features[observed], target,
                                             self.alpha)
                        scores[:, class_position] = _ridge_predict(
                            weights, features[mask])
                    matrix[mask, target_index] = classes[
                        scores.argmax(axis=1)]
                else:
                    weights = _ridge_fit(features[observed],
                                         matrix[observed, target_index],
                                         self.alpha)
                    matrix[mask, target_index] = _ridge_predict(
                        weights, features[mask])
            self.n_iterations_ = iteration + 1
            delta = np.abs(matrix - previous).max()
            if delta < self.tolerance:
                break

        imputed = dirty.copy()
        for position, column in enumerate(columns):
            values = dirty.column(column)
            for row in range(dirty.n_rows):
                if values[row] is not MISSING:
                    continue
                raw = matrix[row, position]
                if dirty.is_categorical(column):
                    if column in encoders and encoders.cardinality(column):
                        code = int(np.clip(round(raw), 0,
                                           encoders.cardinality(column) - 1))
                        imputed.set(row, column, encoders[column].decode(code))
                else:
                    imputed.set(row, column, float(raw))
        return imputed
