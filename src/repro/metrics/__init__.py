"""Evaluation metrics: imputation scoring, dataset statistics (§5),
and per-value error analysis (Figures 11-12)."""

from .scoring import (
    ImputationScore,
    evaluate_imputation,
    categorical_accuracy,
    numerical_rmse,
)
from .dataset_stats import (
    ColumnStats,
    DatasetStats,
    column_statistics,
    dataset_statistics,
    global_distinct,
)
from .calibration import (
    ReliabilityBin,
    reliability_curve,
    expected_calibration_error,
)
from .error_analysis import (
    ValueErrorRow,
    expected_error,
    per_value_errors,
    pearson_correlation,
)

__all__ = [
    "ImputationScore",
    "evaluate_imputation",
    "categorical_accuracy",
    "numerical_rmse",
    "ColumnStats",
    "DatasetStats",
    "column_statistics",
    "dataset_statistics",
    "global_distinct",
    "ReliabilityBin",
    "reliability_curve",
    "expected_calibration_error",
    "ValueErrorRow",
    "expected_error",
    "per_value_errors",
    "pearson_correlation",
]
