"""Tests for scoring, dataset statistics, and error analysis."""

import numpy as np
import pytest

from repro.data import MISSING, Table
from repro.corruption import Corruption, inject_mcar
from repro.metrics import (
    evaluate_imputation,
    categorical_accuracy,
    numerical_rmse,
    column_statistics,
    dataset_statistics,
    global_distinct,
    expected_error,
    per_value_errors,
    pearson_correlation,
)


def make_corruption():
    clean = Table({
        "c": ["a", "b", "a", "b"],
        "x": [1.0, 2.0, 3.0, 4.0],
    })
    dirty = clean.copy()
    injected = [(0, "c"), (2, "c"), (1, "x")]
    for row, column in injected:
        dirty.set(row, column, MISSING)
    return Corruption(dirty=dirty, clean=clean, injected=injected)


class TestScoring:
    def test_perfect_imputation(self):
        corruption = make_corruption()
        score = evaluate_imputation(corruption, corruption.clean)
        assert score.accuracy == 1.0
        assert score.rmse == pytest.approx(0.0)
        assert score.fill_rate == 1.0
        assert score.n_categorical == 2
        assert score.n_numerical == 1

    def test_partial_accuracy(self):
        corruption = make_corruption()
        imputed = corruption.clean.copy()
        imputed.set(0, "c", "b")  # wrong
        score = evaluate_imputation(corruption, imputed)
        assert score.accuracy == pytest.approx(0.5)

    def test_unfilled_counts_as_wrong_for_accuracy(self):
        corruption = make_corruption()
        imputed = corruption.dirty.copy()  # nothing filled
        score = evaluate_imputation(corruption, imputed)
        assert score.accuracy == 0.0
        assert score.fill_rate == 0.0
        assert np.isnan(score.rmse)

    def test_rmse_value(self):
        corruption = make_corruption()
        imputed = corruption.clean.copy()
        imputed.set(1, "x", 5.0)  # truth is 2.0 -> error 3
        score = evaluate_imputation(corruption, imputed)
        assert score.rmse == pytest.approx(3.0)

    def test_per_column_accuracy(self):
        corruption = make_corruption()
        score = evaluate_imputation(corruption, corruption.clean)
        assert score.per_column_accuracy == {"c": 1.0}

    def test_accuracy_nan_without_categorical_cells(self):
        clean = Table({"x": [1.0, 2.0]})
        dirty = clean.copy()
        dirty.set(0, "x", MISSING)
        corruption = Corruption(dirty=dirty, clean=clean,
                                injected=[(0, "x")])
        score = evaluate_imputation(corruption, clean)
        assert np.isnan(score.accuracy)
        assert score.rmse == pytest.approx(0.0)

    def test_standalone_helpers(self):
        corruption = make_corruption()
        assert categorical_accuracy(corruption.clean, corruption.clean,
                                    corruption.injected) == 1.0
        assert numerical_rmse(corruption.clean, corruption.clean,
                              corruption.injected) == pytest.approx(0.0)


class TestDatasetStats:
    def test_uniform_column_statistics(self):
        table = Table({"c": ["a", "b", "c", "d"]})
        stats = column_statistics(table, "c")
        assert stats.skewness == pytest.approx(0.0)
        assert stats.n_distinct == 4
        # All counts equal 1: nothing exceeds the 90% quantile.
        assert stats.n_plus == 0
        assert stats.f_plus == 0.0

    def test_skewed_column_has_frequent_value(self):
        table = Table({"c": ["a"] * 90 + ["b", "c", "d", "e", "f"]})
        stats = column_statistics(table, "c")
        assert stats.n_plus == 1
        assert stats.f_plus == pytest.approx(90 / 95)
        assert stats.skewness > 1.0

    def test_single_value_column(self):
        table = Table({"c": ["a", "a"]})
        stats = column_statistics(table, "c")
        assert stats.skewness == 0.0
        assert stats.n_distinct == 1

    def test_global_distinct_deduplicates_across_columns(self):
        table = Table({"a": ["x", "y"], "b": ["x", "z"]})
        assert global_distinct(table) == 3

    def test_dataset_statistics_shape(self):
        table = Table({"c": ["a", "a", "b"], "x": [1.0, 1.0, 2.0]})
        stats = dataset_statistics(table)
        assert stats.n_rows == 3
        assert stats.n_columns == 2
        assert stats.n_categorical == 1
        assert stats.n_numerical == 1
        assert stats.distinct == 4

    def test_flare_like_beats_imdb_like_on_f_plus(self):
        # The §5 argument: skewed small domains => high F+, unique-heavy
        # domains => low F+.
        rng = np.random.default_rng(0)
        skewed = Table({"c": ["dominant"] * 180 +
                        [f"rare{index}" for index in range(20)]})
        unique = Table({"c": [f"title{index}" for index in range(200)]})
        assert column_statistics(skewed, "c").f_plus > \
            column_statistics(unique, "c").f_plus
        del rng


class TestErrorAnalysis:
    def test_expected_error_formula(self):
        assert expected_error(0.9) == pytest.approx(0.1)
        assert expected_error(0.0) == 1.0
        with pytest.raises(ValueError):
            expected_error(1.5)

    def test_per_value_errors_sorted_by_frequency(self):
        clean = Table({"c": ["f"] * 8 + ["t"] * 2})
        dirty = clean.copy()
        injected = [(0, "c"), (8, "c"), (9, "c")]
        for row, column in injected:
            dirty.set(row, column, MISSING)
        corruption = Corruption(dirty=dirty, clean=clean, injected=injected)
        # Imputer always answers "f": right for f, wrong for t.
        imputed = dirty.copy()
        for row, column in injected:
            imputed.set(row, column, "f")
        rows = per_value_errors(corruption, imputed, "c")
        assert [row.value for row in rows] == ["f", "t"]
        assert rows[0].actual == 0.0
        assert rows[1].actual == 1.0
        assert rows[0].expected == pytest.approx(0.2)
        assert rows[1].n_cases == 2

    def test_value_without_test_cases_reports_nan(self):
        clean = Table({"c": ["a", "a", "b"]})
        dirty = clean.copy()
        dirty.set(0, "c", MISSING)
        corruption = Corruption(dirty=dirty, clean=clean,
                                injected=[(0, "c")])
        rows = per_value_errors(corruption, clean, "c")
        b_row = next(row for row in rows if row.value == "b")
        assert np.isnan(b_row.actual)

    def test_unfilled_cell_counts_as_wrong(self):
        clean = Table({"c": ["a", "a"]})
        dirty = clean.copy()
        dirty.set(0, "c", MISSING)
        corruption = Corruption(dirty=dirty, clean=clean,
                                injected=[(0, "c")])
        rows = per_value_errors(corruption, dirty, "c")
        assert rows[0].actual == 1.0

    def test_mode_imputer_tracks_expected_curve(self):
        # End-to-end sanity for the §5 claim using the mode imputer.
        rng = np.random.default_rng(0)
        values = ["big"] * 700 + ["mid"] * 200 + ["small"] * 100
        rng.shuffle(values)
        clean = Table({"c": values})
        corruption = inject_mcar(clean, 0.3, np.random.default_rng(1))
        from repro.baselines import ModeMeanImputer
        imputed = ModeMeanImputer().impute(corruption.dirty)
        rows = per_value_errors(corruption, imputed, "c")
        actual = [row.actual for row in rows]
        # Monotone: frequent value imputed best.
        assert actual[0] < actual[1] <= actual[2]


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_negative_correlation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == \
            pytest.approx(-1.0)

    def test_nan_values_ignored(self):
        rho = pearson_correlation([1, 2, 3, np.nan], [2, 4, 6, 100])
        assert rho == pytest.approx(1.0)

    def test_constant_sequence_is_nan(self):
        assert np.isnan(pearson_correlation([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])


class TestPerColumnRmse:
    def test_per_column_rmse_reported(self):
        corruption = make_corruption()
        imputed = corruption.clean.copy()
        imputed.set(1, "x", 5.0)
        score = evaluate_imputation(corruption, imputed)
        assert score.per_column_rmse == {"x": pytest.approx(3.0)}

    def test_unfilled_numeric_column_absent(self):
        corruption = make_corruption()
        score = evaluate_imputation(corruption, corruption.dirty)
        assert score.per_column_rmse == {}
