"""The built-in ``RPR`` lint rules.

Each rule encodes one invariant this reproduction depends on; the full
catalog with rationale and suppression examples is in
``docs/static-analysis.md``.  Scopes:

* *hot-path* (``repro.tensor``, ``repro.gnn``, ``repro.nn``) — code
  that runs inside the epoch loop;
* *model* (hot-path plus ``repro.graph``, ``repro.core``) — code whose
  outputs must be reproducible under a fixed seed;
* *everywhere* — all linted modules.
"""

from __future__ import annotations

import ast

from .engine import (
    CONCURRENCY_PACKAGES,
    DTYPE_PACKAGES,
    HOT_PACKAGES,
    MODEL_PACKAGES,
    SERVE_PACKAGE,
    SERVE_PROCESS_MODULES,
    Finding,
    LintContext,
    ProjectRule,
    Rule,
    in_package,
    register,
)

__all__ = ["Float64Drift", "GradDropped", "UngatedTelemetry",
           "RawThreading", "Nondeterminism", "BareExcept",
           "ForkUnsafeThreading", "SharedWriteSafety", "RngProvenance",
           "ResourceLifecycle", "WorkspaceBypass"]

_NUMPY_NAMES = ("np", "numpy")

#: numpy allocators whose default dtype is float64; hot-path calls must
#: request a dtype explicitly so float32 training stays float32.
_FLOAT64_ALLOCATORS = ("zeros", "ones", "empty", "full")


def _is_numpy(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in _NUMPY_NAMES


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(keyword.arg == name for keyword in call.keywords)


@register
class Float64Drift(Rule):
    """RPR001 — float64 literals/allocations on the training hot path."""

    code = "RPR001"
    title = "float64 drift in hot-path modules"
    severity = "error"
    rationale = (
        "PR 1 made float32 the training default with NEP-50-safe scalar "
        "handling; a single float64 tensor silently promotes every "
        "downstream op and doubles the epoch cost.  Hot-path modules "
        "must not hard-code np.float64, pass dtype='float64', or call "
        "numpy allocators (np.zeros/ones/empty/full, "
        "rng.standard_normal) without an explicit dtype — those default "
        "to float64 regardless of the engine's default dtype.  The "
        "scope includes repro.embeddings and repro.parallel: the "
        "pre-compute's arrays feed straight into training, so drift "
        "there promotes the whole feature matrix.")

    def applies_to(self, module: str) -> bool:
        return in_package(module, DTYPE_PACKAGES)

    def check(self, context: LintContext) -> list[Finding]:
        findings = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and node.attr == "float64" \
                    and _is_numpy(node.value):
                findings.append(self.finding(
                    context, node,
                    "np.float64 on the hot path; use the engine default "
                    "dtype (repro.tensor.get_default_dtype) or take a "
                    "dtype parameter"))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(context, node))
            elif isinstance(node, ast.keyword) and node.arg == "dtype" \
                    and isinstance(node.value, ast.Constant) \
                    and node.value.value == "float64":
                findings.append(self.finding(
                    context, node.value,
                    "dtype='float64' literal on the hot path; thread the "
                    "configured dtype through instead"))
        return findings

    def _check_call(self, context: LintContext,
                    call: ast.Call) -> list[Finding]:
        func = call.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _FLOAT64_ALLOCATORS \
                and _is_numpy(func.value) \
                and not _has_keyword(call, "dtype"):
            return [self.finding(
                context, call,
                f"np.{func.attr}(...) without dtype allocates float64; "
                f"pass dtype= (e.g. the engine default dtype)")]
        if isinstance(func, ast.Attribute) \
                and func.attr == "standard_normal" \
                and not _has_keyword(call, "dtype"):
            return [self.finding(
                context, call,
                "standard_normal(...) without dtype samples float64; "
                "pass dtype= explicitly")]
        return []


@register
class GradDropped(Rule):
    """RPR002 — tensor-op call sites that sever autograd silently."""

    code = "RPR002"
    title = "requires_grad dropped by rewrapping tensor data"
    severity = "error"
    rationale = (
        "Tensor(x.data) (or Tensor.ensure(x.data) / Tensor(x.numpy())) "
        "builds a fresh leaf around another tensor's storage: gradients "
        "stop flowing, with no error — training just quietly fails to "
        "learn through that path.  Pass the tensor itself, or make the "
        "cut explicit with .detach().")

    def check(self, context: LintContext) -> list[Finding]:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            wraps = (isinstance(func, ast.Name) and func.id == "Tensor") \
                or (isinstance(func, ast.Attribute)
                    and func.attr == "ensure"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "Tensor")
            if not wraps:
                continue
            argument = node.args[0]
            if isinstance(argument, ast.Attribute) \
                    and argument.attr == "data":
                findings.append(self.finding(
                    context, node,
                    "wrapping another tensor's .data severs "
                    "requires_grad propagation; pass the tensor or use "
                    ".detach() to make the cut explicit"))
            elif isinstance(argument, ast.Call) \
                    and isinstance(argument.func, ast.Attribute) \
                    and argument.func.attr == "numpy":
                findings.append(self.finding(
                    context, node,
                    "Tensor(x.numpy()) severs requires_grad propagation; "
                    "pass the tensor or use .detach()"))
        return findings


@register
class UngatedTelemetry(Rule):
    """RPR003 — telemetry on the hot path not behind the enabled flag."""

    code = "RPR003"
    title = "ungated telemetry in hot-path modules"
    severity = "error"
    rationale = (
        "PR 3's telemetry is free when disabled *only* because hot-path "
        "instrumentation goes through the gated entry points: "
        "detail_span() (self-gated) for spans and an explicit "
        "`if <counters>.enabled:` guard around per-op record() calls.  "
        "A raw span()/tracer.span() or an unguarded record() in "
        "repro.tensor/gnn/nn pays allocation and locking on every op "
        "of every epoch even with telemetry off.")

    def applies_to(self, module: str) -> bool:
        return in_package(module, HOT_PACKAGES)

    def check(self, context: LintContext) -> list[Finding]:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name == "span":
                findings.append(self.finding(
                    context, node,
                    "raw span() on the hot path; use detail_span(), "
                    "which compiles to a no-op when telemetry is "
                    "disabled"))
            elif name == "record" and not self._gated(context, node):
                findings.append(self.finding(
                    context, node,
                    "per-op record() not gated behind the counters' "
                    ".enabled flag; wrap it in `if <counters>.enabled:`"))
        return findings

    @staticmethod
    def _gated(context: LintContext, node: ast.Call) -> bool:
        for ancestor in context.ancestors(node):
            if isinstance(ancestor, ast.If):
                for part in ast.walk(ancestor.test):
                    if (isinstance(part, ast.Attribute)
                            and part.attr == "enabled") \
                            or (isinstance(part, ast.Name)
                                and part.id == "enabled"):
                        return True
        return False


@register
class RawThreading(Rule):
    """RPR004 — raw concurrency primitives outside the sanctioned owners."""

    code = "RPR004"
    title = "raw concurrency primitives outside repro.serve/repro.parallel"
    severity = "error"
    rationale = (
        "Concurrency invariants concentrate where they can be audited: "
        "repro.serve owns the thread side (engine lock -> batcher state "
        "lock; never hold a lock across a blocking wait), while the "
        "process side — lifecycle, shared-memory lifetime, supervision "
        "— lives in repro.parallel (pools) and the serving tier's "
        "repro.serve.dispatch / repro.serve.workers (pre-fork workers). "
        "Threading or multiprocessing sprinkled through model or data "
        "code cannot be audited against those rules — other packages "
        "describe shards and hand them to repro.parallel.parallel_map "
        "(repro.sampling is the template: its minibatch schedule takes "
        "seeds from repro.parallel.spawn_seeds but owns no pool, which "
        "is exactly why its batch order is worker-count independent; "
        "repro.distributed is the sanctioned exception that coordinates "
        "pools directly for data-parallel training). "
        "Inside repro.serve, process primitives outside the dispatch/"
        "worker modules are flagged too: the threaded serving layer "
        "must not quietly grow a second process tier.  Telemetry's "
        "internal locks are the sanctioned exception, suppressed with "
        "a reason.")

    _MODULES = ("threading", "_thread", "queue", "multiprocessing",
                "concurrent.futures", "concurrent")
    _PROCESS_MODULES = ("multiprocessing", "concurrent.futures",
                        "concurrent")

    def applies_to(self, module: str) -> bool:
        if in_package(module, "repro.parallel"):
            return False
        if in_package(module, "repro.distributed"):
            # The data-parallel coordinator/workers own their pool's
            # lifecycle (via repro.parallel.ShardPool today, and any
            # direct process plumbing they grow tomorrow).
            return False
        if in_package(module, SERVE_PROCESS_MODULES):
            # The dispatch/worker tier owns both thread and process
            # primitives for serving.
            return False
        return True

    def check(self, context: LintContext) -> list[Finding]:
        in_serve = in_package(context.module, SERVE_PACKAGE)
        findings = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                root = name.split(".")[0]
                if name not in self._MODULES \
                        and root not in self._MODULES:
                    continue
                is_process = name in self._PROCESS_MODULES \
                    or root in self._PROCESS_MODULES
                if in_serve and not is_process:
                    continue  # threads are repro.serve's to own
                if in_serve:
                    findings.append(self.finding(
                        context, node,
                        f"import of {name!r} in repro.serve outside "
                        f"the sanctioned process tier; worker process "
                        f"lifecycle belongs in repro.serve.dispatch / "
                        f"repro.serve.workers (or repro.parallel)"))
                else:
                    findings.append(self.finding(
                        context, node,
                        f"import of {name!r} outside "
                        f"repro.serve/repro.parallel; keep thread "
                        f"concurrency in the serving layer and process "
                        f"pools in repro.parallel (or suppress with a "
                        f"reason if this module owns a sanctioned lock)"))
        return findings


@register
class Nondeterminism(Rule):
    """RPR005 — unseeded RNG / wall-clock logic in model and graph code."""

    code = "RPR005"
    title = "nondeterminism in model/graph code"
    severity = "warning"
    rationale = (
        "Self-supervised training failures surface as silently worse "
        "imputation accuracy; without bit-reproducible runs they cannot "
        "be bisected.  Model and graph code must take an explicit "
        "np.random.Generator (or derive one from the config seed) and "
        "must not branch on wall-clock time.  repro.sampling is held "
        "to the same bar: neighbor draws and batch schedules come from "
        "SeedSequence children (spawn_seeds), so a seeded default_rng "
        "is fine while bare np.random.* calls are flagged.  Documented "
        "seedable fallbacks carry a noqa with the reason.")

    _LEGACY_RANDOM = ("seed", "rand", "randn", "random", "choice",
                      "shuffle", "permutation", "randint", "normal",
                      "uniform")

    def applies_to(self, module: str) -> bool:
        return in_package(module, MODEL_PACKAGES)

    def check(self, context: LintContext) -> list[Finding]:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "default_rng" and not node.args \
                    and not node.keywords:
                findings.append(self.finding(
                    context, node,
                    "default_rng() without a seed is nondeterministic; "
                    "accept an rng/seed from the caller"))
            elif func.attr in self._LEGACY_RANDOM \
                    and isinstance(func.value, ast.Attribute) \
                    and func.value.attr == "random" \
                    and _is_numpy(func.value.value):
                findings.append(self.finding(
                    context, node,
                    f"np.random.{func.attr} uses the unseeded global "
                    f"RNG; use an explicit np.random.Generator"))
            elif func.attr == "time" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "time":
                findings.append(self.finding(
                    context, node,
                    "time.time() in model/graph code makes runs "
                    "time-dependent; thread timestamps in from the "
                    "caller (telemetry owns timing)"))
            elif func.attr in ("now", "utcnow") \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in ("datetime", "date"):
                findings.append(self.finding(
                    context, node,
                    f"{func.value.id}.{func.attr}() in model/graph code "
                    f"makes runs time-dependent"))
        return findings


@register
class BareExcept(Rule):
    """RPR006 — bare ``except:`` (and hot-path error swallowing)."""

    code = "RPR006"
    title = "bare except swallows autograd errors"
    severity = "error"
    rationale = (
        "A bare except: (or except BaseException without re-raise) "
        "catches KeyboardInterrupt, SystemExit and — critically — the "
        "RuntimeErrors the autograd engine raises for malformed "
        "backward graphs, turning hard failures into silently bad "
        "models.  On the hot path even `except Exception: pass` is "
        "banned: numerical errors there must propagate (or go through "
        "the anomaly sanitizer).")

    def check(self, context: LintContext) -> list[Finding]:
        findings = []
        hot = in_package(context.module, HOT_PACKAGES)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    context, node,
                    "bare except: swallows KeyboardInterrupt and "
                    "autograd errors; catch Exception or narrower"))
            elif isinstance(node.type, ast.Name) \
                    and node.type.id == "BaseException" \
                    and not any(isinstance(part, ast.Raise)
                                for part in ast.walk(node)):
                findings.append(self.finding(
                    context, node,
                    "except BaseException without re-raise; re-raise or "
                    "catch Exception"))
            elif hot and isinstance(node.type, ast.Name) \
                    and node.type.id in ("Exception", "BaseException") \
                    and all(isinstance(part, ast.Pass)
                            for part in node.body):
                findings.append(self.finding(
                    context, node,
                    "swallowing Exception on the hot path hides "
                    "autograd/numerical failures; handle or re-raise"))
        return findings


#: Packages whose functions may own thread primitives even when they
#: run inside forked workers: the serving worker loop (its feeder
#: threads and locks are the audited design) and the pool substrate
#: itself.  Telemetry's internal locks are initialized lazily and are
#: fork-safe by construction (re-created per process).
_FORK_SANCTIONED = (SERVE_PACKAGE, "repro.parallel", "repro.telemetry")


@register
class ForkUnsafeThreading(ProjectRule):
    """RPR007 — thread primitives in code that runs inside forked
    workers, outside the sanctioned owners."""

    code = "RPR007"
    title = "thread primitives in fork-reachable code"
    severity = "error"
    rationale = (
        "The pool substrate forks workers; a lock or thread created in "
        "code reachable from a worker entry point (a function handed "
        "to parallel_map/ShardPool/start_worker/Process) either "
        "duplicates held state across the fork or spawns threads the "
        "supervisor cannot see.  Only the audited owners — repro.serve "
        "(the worker loop's feeder threads), repro.parallel, and "
        "repro.telemetry's fork-safe lazy locks — may do this; shard "
        "functions and model code must stay thread-free so a worker "
        "crash is always attributable to the shard, not to an "
        "interleaving.")

    def check_project(self, project, taint) -> list[Finding]:
        findings = []
        for qualname in sorted(project.fork_reachable):
            module = project.defined_in(qualname)
            if module is None or in_package(module, _FORK_SANCTIONED):
                continue
            summary = project.modules[module]
            function = project.function_summary(qualname)
            if function is None:
                continue
            for factory, line, col in function.thread_creates:
                findings.append(self.finding_at(
                    summary.path, line, col,
                    f"threading.{factory} created in {qualname}, which "
                    f"runs inside a forked worker (reachable from a "
                    f"worker entry point); thread primitives in fork-"
                    f"reachable code belong to repro.serve/"
                    f"repro.parallel only"))
        return findings


@register
class SharedWriteSafety(ProjectRule):
    """RPR008 — writes into shared-memory views without a copy."""

    code = "RPR008"
    title = "write into a shared-memory view without an intervening copy"
    severity = "error"
    rationale = (
        "Views from attach_shared / FrozenGraph.arrays() / a worker's "
        "views parameter alias one shared segment across every "
        "process; an item assignment, augmented assignment, out=, or "
        "in-place method (.fill/.sort) on one is a cross-process race "
        "that corrupts other workers' reads silently.  The sanctioned "
        "pattern is materializing first — .copy(), np.array(...), "
        "np.ascontiguousarray(...) — which this rule tracks through "
        "assignments and call boundaries; writes to the copy are "
        "clean.")

    def check_project(self, project, taint) -> list[Finding]:
        findings = []
        for module in sorted(project.modules):
            summary = project.modules[module]
            for local in sorted(summary.functions):
                function = summary.functions[local]
                qualname = f"{module}.{local}"
                for line, col, detail, tags in function.shared_writes:
                    if not taint.is_shared(qualname, tags):
                        continue
                    findings.append(self.finding_at(
                        summary.path, line, col,
                        f"{detail} targets an array that flows from a "
                        f"shared-memory source (in {qualname}); write "
                        f"to a .copy() or allocate a private output "
                        f"array"))
        return findings


@register
class RngProvenance(ProjectRule):
    """RPR009 — RNG constructions whose seed has no provenance."""

    code = "RPR009"
    title = "RNG seed without provenance from the seed tree"
    severity = "warning"
    rationale = (
        "RPR005 catches the *unseeded* default_rng(); this rule checks "
        "the seeded ones.  In model/sampling/distributed scope every "
        "Generator must derive from the config seed — a spawn_seeds "
        "child, a SeedSequence spawn, or an explicitly threaded seed "
        "value — or worker schedules drift apart across worker counts "
        "and the bit-identical-reduction contract dies.  A seed that "
        "is a literal constant, flows from a seed-like parameter or "
        "call (seed/rng/seq in the name), or comes through spawn_seeds "
        "is sanctioned; an arbitrary expression (time, pids, array "
        "contents) is flagged.")

    def check_project(self, project, taint) -> list[Finding]:
        findings = []
        for module in sorted(project.modules):
            if not in_package(module, MODEL_PACKAGES):
                continue
            summary = project.modules[module]
            for local in sorted(summary.functions):
                function = summary.functions[local]
                qualname = f"{module}.{local}"
                for line, col, api, tags in function.rng_calls:
                    if taint.is_seeded(qualname, tags):
                        continue
                    findings.append(self.finding_at(
                        summary.path, line, col,
                        f"{api}(...) in {qualname} takes a seed with no "
                        f"visible provenance from spawn_seeds or the "
                        f"config seed; derive it from the seed tree so "
                        f"runs stay bisectable"))
        return findings


@register
class ResourceLifecycle(ProjectRule):
    """RPR010 — pools/segments/pipes created without managed disposal."""

    code = "RPR010"
    title = "process resource created without close/unlink on all paths"
    severity = "error"
    rationale = (
        "ShardPool, SharedArrays, SharedMemory, Pool, Pipe, and "
        "Process own OS state (POSIX shm segments, file descriptors, "
        "child processes) that outlives the interpreter if not "
        "released — leaked /dev/shm segments from a crashed run are "
        "exactly the failure the resource_tracker warnings flag.  "
        "Create them under `with`, close in try/finally, or hand "
        "ownership to an object/ caller that does (storing to an "
        "attribute, returning, or passing onward counts as the "
        "transfer).")

    def check_project(self, project, taint) -> list[Finding]:
        findings = []
        for module in sorted(project.modules):
            summary = project.modules[module]
            for local in sorted(summary.functions):
                function = summary.functions[local]
                qualname = f"{module}.{local}"
                for kind, line, col in function.leaked_resources:
                    findings.append(self.finding_at(
                        summary.path, line, col,
                        f"{kind} created in {qualname} with no with-"
                        f"block, try/finally disposal, or ownership "
                        f"transfer on some path; its OS state leaks if "
                        f"this frame unwinds"))
        return findings


#: numpy allocators a backward closure should rent from the workspace
#: arena instead of calling directly (fresh pages every step).
_BACKWARD_ALLOCATORS = ("empty", "zeros", "ones", "full", "empty_like",
                        "zeros_like", "ones_like", "full_like")

#: Names whose presence shows a backward closure already routes its
#: scratch through the workspace arena (repro.tensor.arena).
_WORKSPACE_MARKERS = ("_scratch", "WORKSPACE", "_WORKSPACE")


@register
class WorkspaceBypass(Rule):
    """RPR011 — backward closures allocating instead of renting."""

    code = "RPR011"
    title = "fresh ndarray allocation in a hot-path backward closure"
    severity = "warning"
    rationale = (
        "PR 10's workspace arena exists so the autograd hot path stops "
        "paying an allocation per gradient buffer per step: backward "
        "closures in repro.tensor/gnn/nn rent shape-keyed scratch via "
        "_scratch()/WORKSPACE.active.rent() and the arena recycles it "
        "every reset.  A closure that calls np.empty/np.zeros/"
        "np.*_like directly opts its op out of pooling — the epoch "
        "allocation count silently regresses while the arena telemetry "
        "still looks healthy, because unpooled buffers never show up "
        "as pool misses.")

    def applies_to(self, module: str) -> bool:
        return in_package(module, HOT_PACKAGES)

    def check(self, context: LintContext) -> list[Finding]:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.FunctionDef) \
                    or node.name != "backward":
                continue
            arguments = [argument.arg for argument in node.args.args]
            if arguments[:1] == ["self"]:
                continue  # Tensor.backward itself, not an op closure
            if self._rents_workspace(node):
                continue
            for call in ast.walk(node):
                if isinstance(call, ast.Call) \
                        and isinstance(call.func, ast.Attribute) \
                        and call.func.attr in _BACKWARD_ALLOCATORS \
                        and _is_numpy(call.func.value):
                    findings.append(self.finding(
                        context, call,
                        f"np.{call.func.attr} in a backward closure "
                        f"allocates a fresh buffer every step; rent "
                        f"workspace scratch (_scratch(shape, dtype) or "
                        f"WORKSPACE.active.rent) so the arena can pool "
                        f"it across steps"))
        return findings

    @staticmethod
    def _rents_workspace(node: ast.FunctionDef) -> bool:
        """Whether the closure already goes through the arena."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in _WORKSPACE_MARKERS:
                return True
            if isinstance(sub, ast.Attribute) \
                    and sub.attr in ("rent", "active"):
                return True
        return False
