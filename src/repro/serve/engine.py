"""Online imputation engine over a fitted (or reloaded) GRIMP model.

The engine splits GRIMP's inference cost into a one-time *pin* and a
cheap per-batch path:

* **pin** — the heterogeneous-GNN forward over the training graph runs
  once (under ``no_grad``) and the resulting node representations
  ``h`` are cached as a dense matrix.  The planned sparse operators and
  the node features never change after fit, so neither does ``h``.
* **batch** — imputing a batch of new rows only looks up each observed
  cell's node representation (unseen values hit the null row), runs the
  per-attribute task heads, and decodes — no message passing, no graph
  rebuild.

This is the GRAPE-style "imputation = prediction on a frozen graph"
framing: the expensive fit happens once, the inference path is
repeatable and cheap.  Engine calls are serialized by an internal lock
(correct under the HTTP server's thread pool); throughput comes from
micro-batching, not from concurrent engine entry.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.model import build_node_index_matrix, build_row_indices
from ..core.trainer import GrimpImputer
from ..data import MISSING, Table
from ..telemetry import Tracer
from ..tensor import Tensor, no_grad

__all__ = ["InferenceEngine", "records_to_table", "table_to_records"]


def records_to_table(records: list[dict], columns: list[str],
                     kinds: dict[str, str]) -> Table:
    """Build a schema-conforming :class:`Table` from JSON-style records.

    Missing keys and ``None`` values become the missing sentinel;
    numerical cells are coerced to float (numeric strings included) so
    HTTP clients can send either ``3.5`` or ``"3.5"``.
    """
    data: dict[str, list] = {column: [] for column in columns}
    for position, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"row {position} is not an object")
        unknown = set(record) - set(columns)
        if unknown:
            raise ValueError(f"row {position} has unknown columns: "
                             f"{sorted(unknown)}")
        for column in columns:
            value = record.get(column)
            if value is None:
                data[column].append(MISSING)
            elif kinds[column] == "numerical":
                try:
                    data[column].append(float(value))
                except (TypeError, ValueError):
                    raise ValueError(
                        f"row {position}, column {column!r}: "
                        f"{value!r} is not numerical") from None
            else:
                data[column].append(value)
    if not records:
        raise ValueError("no rows to impute")
    return Table(data, kinds=dict(kinds))


def table_to_records(table: Table) -> list[dict]:
    """Rows of a table as JSON-ready dicts (missing cells → ``None``)."""
    records = []
    for row in range(table.n_rows):
        record = {}
        for column in table.column_names:
            value = table.get(row, column)
            record[column] = None if value is MISSING else value
        records.append(record)
    return records


class InferenceEngine:
    """Batch imputation over a fitted imputer with pinned representations.

    Parameters
    ----------
    imputer:
        A fitted :class:`~repro.core.GrimpImputer` — either freshly
        trained in this process or restored via
        :func:`repro.serve.load_imputer`.
    pin:
        Compute the node representations eagerly (default).  When false
        the pin happens lazily on the first imputation.
    """

    def __init__(self, imputer: GrimpImputer, pin: bool = True):
        artifacts = getattr(imputer, "_artifacts", None)
        if artifacts is None:
            raise RuntimeError("the imputer is not fitted; run impute() "
                               "or load a checkpoint first")
        self.imputer = imputer
        self.artifacts = artifacts
        self.columns: list[str] = list(artifacts.columns)
        self.kinds: dict[str, str] = dict(artifacts.kinds)
        # Aggregate-only tracer (``max_spans=0``): per-path totals with
        # constant memory, safe for long-lived serving processes.  The
        # tracer is activated around engine work so detail spans (GNN
        # layers, spmm dispatch) nest under "pin"/"batch" when telemetry
        # is enabled globally.
        self.tracer = Tracer(max_spans=0)
        self._h: np.ndarray | None = None
        self._lock = threading.Lock()
        self._rows_imputed = 0
        self._cells_filled = 0
        if pin:
            self.pin()

    @classmethod
    def from_checkpoint(cls, path, pin: bool = True) -> "InferenceEngine":
        """Load a checkpoint directory and build an engine over it."""
        from .checkpoint import load_imputer
        return cls(load_imputer(path), pin=pin)

    # ------------------------------------------------------------------
    def pin(self) -> np.ndarray:
        """Run the GNN forward once and cache the node representations."""
        with self._lock:
            return self._pin_locked()

    def _pin_locked(self) -> np.ndarray:
        if self._h is None:
            artifacts = self.artifacts
            model = artifacts.model
            model.eval()
            with self.tracer.activate(), self.tracer.span("pin"), \
                    no_grad():
                h_extended = model.node_representations(
                    artifacts.adjacencies, artifacts.feature_tensor)
            self._h = np.ascontiguousarray(h_extended.data)
        return self._h

    def adopt_pinned(self, h: np.ndarray) -> np.ndarray:
        """Adopt externally computed node representations, zero-copy.

        The multi-process serving tier pins once in the dispatch
        process and hands every worker the same matrix through shared
        memory; workers adopt the (read-only) view instead of repeating
        the GNN forward.  The matrix must be exactly what
        :meth:`pin` would produce for this checkpoint — callers get
        byte-identical imputations precisely because it is.
        """
        if h.ndim != 2:
            raise ValueError(f"pinned representations must be a matrix, "
                             f"got shape {h.shape}")
        with self._lock:
            if self._h is not None and self._h is not h:
                raise RuntimeError("representations are already pinned; "
                                   "refusing to swap them out mid-serve")
            self._h = h
        return h

    @property
    def is_pinned(self) -> bool:
        """Whether the node representations are already cached."""
        return self._h is not None

    # ------------------------------------------------------------------
    def impute_table(self, new_dirty: Table) -> Table:
        """Impute every missing cell of a new same-schema table.

        Numerically identical to
        :meth:`~repro.core.GrimpImputer.impute_new_rows`, but the GNN
        forward is reused across calls instead of recomputed.
        """
        if list(new_dirty.column_names) != self.columns or \
                dict(new_dirty.kinds) != self.kinds:
            raise ValueError("schema mismatch with the served model")
        with self._lock:
            h = self._pin_locked()
            with self.tracer.activate(), \
                    self.tracer.span("batch", rows=new_dirty.n_rows):
                return self._impute_locked(new_dirty, h)

    def impute_records(self, records: list[dict]) -> list[dict]:
        """Impute JSON-style records; returns fully-filled records."""
        table = records_to_table(records, self.columns, self.kinds)
        return table_to_records(self.impute_table(table))

    # ------------------------------------------------------------------
    def _impute_locked(self, new_dirty: Table, h: np.ndarray) -> Table:
        artifacts = self.artifacts
        model = artifacts.model
        normalized = artifacts.normalizer.transform(new_dirty)
        imputed = new_dirty.copy()
        missing = new_dirty.missing_cells()
        self._rows_imputed += new_dirty.n_rows
        if not missing:
            return imputed
        model.eval()
        with no_grad():
            node_matrix = build_node_index_matrix(normalized,
                                                  artifacts.table_graph)
            by_column: dict[str, list[int]] = {}
            for row, column in missing:
                by_column.setdefault(column, []).append(row)
            for column, rows in by_column.items():
                indices = build_row_indices(normalized,
                                            artifacts.table_graph, rows,
                                            node_matrix=node_matrix)
                output = model.task_output(column,
                                           Tensor(h[indices])).data
                if new_dirty.is_categorical(column):
                    if artifacts.encoders.cardinality(column) == 0:
                        continue
                    for row, code in zip(rows, output.argmax(axis=1)):
                        imputed.set(row, column,
                                    artifacts.encoders[column].decode(
                                        int(code)))
                        self._cells_filled += 1
                else:
                    for row, value in zip(rows, output.reshape(-1)):
                        imputed.set(row, column,
                                    artifacts.normalizer.inverse_value(
                                        column, float(value)))
                        self._cells_filled += 1
        return imputed

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Engine-side counters and phase timings for ``/metrics``."""
        with self._lock:
            phases = self.tracer.aggregate()
            for key in ("pin", "batch"):
                phases.setdefault(key, {"seconds": 0.0, "count": 0})
            return {
                "rows_imputed": self._rows_imputed,
                "cells_filled": self._cells_filled,
                "pinned": self._h is not None,
                "phases": phases,
            }
