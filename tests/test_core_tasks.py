"""Tests for the task heads (linear and attention) and the K matrix."""

import numpy as np
import pytest

from repro.core import LinearTask, AttentionTask, build_k_matrix, K_STRATEGIES
from repro.core import parameter_counts
from repro.nn import Adam
from repro.tensor import Tensor, cross_entropy

RNG = np.random.default_rng(3)


class TestKMatrix:
    def test_diagonal_all_equal(self):
        k = build_k_matrix(4, 1, "diagonal")
        assert np.allclose(k, np.eye(4))

    def test_target_selects_one_column(self):
        k = build_k_matrix(4, 2, "target")
        expected = np.zeros((4, 4))
        expected[2, 2] = 1.0
        assert np.allclose(k, expected)

    def test_weak_diagonal(self):
        k = build_k_matrix(3, 0, "weak_diagonal", weak_weight=0.3)
        assert k[0, 0] == 1.0
        assert k[1, 1] == pytest.approx(0.3)
        assert k[2, 2] == pytest.approx(0.3)

    def test_weak_diagonal_fd_raises_fd_columns(self):
        k = build_k_matrix(4, 0, "weak_diagonal_fd", fd_columns=[2],
                           weak_weight=0.3, fd_weight=0.8)
        assert k[0, 0] == 1.0
        assert k[2, 2] == pytest.approx(0.8)
        assert k[1, 1] == pytest.approx(0.3)

    def test_fd_weight_does_not_downgrade_target(self):
        k = build_k_matrix(3, 1, "weak_diagonal_fd", fd_columns=[1])
        assert k[1, 1] == 1.0

    def test_off_diagonal_zero_everywhere(self):
        for strategy in K_STRATEGIES:
            k = build_k_matrix(5, 2, strategy, fd_columns=[0])
            assert np.allclose(k - np.diag(np.diag(k)), 0.0)

    def test_invalid_strategy_raises(self):
        with pytest.raises(ValueError):
            build_k_matrix(3, 0, "full")

    def test_out_of_range_target_raises(self):
        with pytest.raises(ValueError):
            build_k_matrix(3, 3, "diagonal")


class TestLinearTask:
    def test_output_shape(self):
        task = LinearTask(n_columns=4, vector_dim=8, output_dim=5, rng=RNG)
        out = task(Tensor(RNG.standard_normal((7, 4, 8))))
        assert out.shape == (7, 5)

    def test_regression_head_single_output(self):
        task = LinearTask(n_columns=3, vector_dim=4, output_dim=1, rng=RNG)
        assert task(Tensor(RNG.standard_normal((2, 3, 4)))).shape == (2, 1)

    def test_learns_simple_mapping(self):
        rng = np.random.default_rng(0)
        task = LinearTask(n_columns=2, vector_dim=4, output_dim=2, rng=rng)
        # Class determined by sign of the first feature of column 0.
        x = rng.standard_normal((120, 2, 4))
        y = (x[:, 0, 0] > 0).astype(int)
        optimizer = Adam(task.parameters(), lr=0.01)
        for _ in range(150):
            optimizer.zero_grad()
            loss = cross_entropy(task(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        accuracy = (task(Tensor(x)).data.argmax(axis=1) == y).mean()
        assert accuracy > 0.95


class TestAttentionTask:
    def make_task(self, strategy="weak_diagonal", n_columns=4, dim=8,
                  output_dim=3, seed=0):
        rng = np.random.default_rng(seed)
        attributes = rng.standard_normal((n_columns, 6))
        return AttentionTask(n_columns=n_columns, vector_dim=dim,
                             output_dim=output_dim, target_index=1,
                             attribute_vectors=attributes,
                             k_strategy=strategy, rng=rng)

    def test_output_shape(self):
        task = self.make_task()
        out = task(Tensor(RNG.standard_normal((5, 4, 8))))
        assert out.shape == (5, 3)

    def test_attention_weights_are_distribution(self):
        task = self.make_task()
        weights = task.attention_weights(
            Tensor(RNG.standard_normal((5, 4, 8))))
        assert weights.shape == (5, 4)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert (weights >= 0).all()

    def test_q_initialized_from_attribute_vectors(self):
        rng = np.random.default_rng(0)
        attributes = rng.standard_normal((4, 6))
        task = AttentionTask(4, 8, 3, target_index=0,
                             attribute_vectors=attributes, rng=rng)
        assert np.allclose(task.q.data, attributes)
        # Q is a trainable copy, not a view.
        task.q.data += 1.0
        assert not np.allclose(task.q.data, attributes)

    def test_q_is_trainable_k_is_not(self):
        task = self.make_task()
        parameter_ids = {id(parameter) for parameter in task.parameters()}
        assert id(task.q) in parameter_ids
        assert id(task.k) not in parameter_ids

    def test_wrong_attribute_vector_shape_raises(self):
        with pytest.raises(ValueError):
            AttentionTask(4, 8, 3, target_index=0,
                          attribute_vectors=np.zeros((3, 6)))

    def test_learns_to_attend_to_informative_column(self):
        # Only column 2 carries the label; training should route
        # attention mass towards it.
        rng = np.random.default_rng(1)
        attributes = rng.standard_normal((3, 6))
        task = AttentionTask(3, 8, 2, target_index=0,
                             attribute_vectors=attributes,
                             k_strategy="diagonal", rng=rng)
        x = rng.standard_normal((200, 3, 8)) * 0.1
        y = rng.integers(0, 2, 200)
        x[:, 2, 0] = np.where(y == 1, 3.0, -3.0)
        optimizer = Adam(task.parameters(), lr=0.02)
        for _ in range(200):
            optimizer.zero_grad()
            loss = cross_entropy(task(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        accuracy = (task(Tensor(x)).data.argmax(axis=1) == y).mean()
        assert accuracy > 0.9
        weights = task.attention_weights(Tensor(x))
        assert weights[:, 2].mean() > 1.0 / 3.0


class TestParameterCounts:
    @pytest.mark.parametrize("n_columns,shared,linear,attention", [
        (14, 2048, 5632, 8572),   # Adult
        (15, 2176, 6016, 9616),   # Australian
        (10, 1536, 4096, 5196),   # Contraceptive
        (16, 2304, 6400, 10752),  # Credit
        (13, 1920, 5248, 7614),   # Flare
        (11, 1664, 4480, 5932),   # IMDB
        (6, 1024, 2560, 2812),    # Mammogram
        (12, 1792, 4864, 6736),   # Tax
        (17, 2432, 6784, 11986),  # Thoracic
        (9, 1408, 3712, 4522),    # Tic-Tac-Toe
    ])
    def test_matches_table1(self, n_columns, shared, linear, attention):
        counts = parameter_counts(n_columns)
        assert counts.shared == shared
        assert counts.linear_total == linear
        assert counts.attention_total == attention

    def test_invalid_columns(self):
        with pytest.raises(ValueError):
            parameter_counts(0)
