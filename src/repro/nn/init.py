"""Weight initialization schemes.

GRIMP's layers are initialized with Glorot/Xavier fan-based schemes, the
default in both PyTorch Geometric's GraphSAGE and AimNet's attention
blocks; we reproduce those here.
"""

from __future__ import annotations

import numpy as np

from ..tensor import get_default_dtype

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "normal"]


def xavier_uniform(fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform initialization for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    # Generator.uniform always samples float64; cast to the engine
    # default so parameters match the configured training dtype.
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)) \
        .astype(get_default_dtype(), copy=False)


def xavier_normal(fan_in: int, fan_out: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Glorot normal initialization for a ``(fan_in, fan_out)`` matrix."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out)) \
        .astype(get_default_dtype(), copy=False)


def kaiming_uniform(fan_in: int, fan_out: int,
                    rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization (suited to ReLU activations)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)) \
        .astype(get_default_dtype(), copy=False)


def zeros(*shape: int) -> np.ndarray:
    """All-zero array, typically for biases."""
    return np.zeros(shape, dtype=get_default_dtype())


def normal(shape: tuple[int, ...], std: float,
           rng: np.random.Generator) -> np.ndarray:
    """Zero-mean normal initialization with the given ``std``."""
    return rng.normal(0.0, std, size=shape) \
        .astype(get_default_dtype(), copy=False)
