"""Autograd support for products with constant sparse matrices.

GNN message passing multiplies node features by a (fixed) normalized
adjacency matrix; only the features carry gradients, so the backward
pass is simply ``A.T @ grad``.

Two call styles are supported:

* **Planned** — pass a :class:`~repro.gnn.plan.PlannedOperator` (usually
  via a :class:`~repro.gnn.plan.MessagePassingPlan`): the CSR forward
  and transposed backward operators were compiled once per fit, so no
  format conversion happens per call.
* **Legacy** — pass any scipy sparse matrix: conversions happen per
  call (and are counted in :data:`~repro.gnn.plan.CONVERSION_COUNTS`).
  The transpose is built *lazily*, only if a gradient actually flows, so
  inference never holds a transposed copy alive.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..telemetry import counter, detail_span
from ..tensor import Tensor, is_grad_enabled
from .plan import PlannedOperator, count_conversion

try:  # scipy's typed CSR kernel: Y += A @ X into a caller-owned buffer
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - older/newer scipy layouts
    _csr_matvecs = None

__all__ = ["sparse_matmul"]


def _spmm(matrix: sparse.csr_matrix, x: np.ndarray,
          out: np.ndarray | None = None) -> np.ndarray:
    """``matrix @ x``, optionally accumulated into a caller-owned ``out``.

    scipy's own ``csr @ dense`` is exactly ``np.zeros`` + ``csr_matvecs``
    (see ``scipy.sparse._base._matmul_multivector``), so zeroing ``out``
    and running the same kernel is bit-identical.  The hot path passes
    ``out=None`` on purpose: scipy's ``np.zeros`` gets lazily-zeroed
    step-warm pages from the allocator, while an eager ``out.fill(0)``
    into an epoch-cold pooled buffer measured ~14% slower.  The ``out``
    form exists for callers that must land the product in a specific
    buffer (shared-memory serving, externally pinned outputs).
    """
    if out is None:
        return matrix @ x
    if _csr_matvecs is None or x.ndim != 2 or \
            matrix.dtype != x.dtype or matrix.format != "csr" or \
            not x.flags.c_contiguous:
        out[...] = matrix @ x
        return out
    n_rows, n_cols = matrix.shape
    n_vecs = x.shape[1]
    out.fill(0)
    _csr_matvecs(n_rows, n_cols, n_vecs, matrix.indptr, matrix.indices,
                 matrix.data, x.ravel(), out.ravel())
    return out

#: Plan-cache dispatch counters: a "hit" is a product served by a
#: precompiled operator (zero conversions), a "miss" takes the legacy
#: per-call path.  Exposed via ``GET /metrics`` and run manifests.
_PLAN_HITS = counter("plan.dispatch.planned",
                     "sparse products served by a precompiled operator")
_PLAN_MISSES = counter("plan.dispatch.legacy",
                       "sparse products through the per-call legacy path")


def sparse_matmul(matrix: sparse.spmatrix | PlannedOperator,
                  x: Tensor) -> Tensor:
    """Compute ``matrix @ x`` where ``matrix`` is a constant scipy sparse
    matrix (or a precompiled :class:`PlannedOperator`) and ``x`` a dense
    ``(n, d)`` tensor.

    Gradients flow only into ``x``.
    """
    if matrix.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {x.shape}")
    if isinstance(matrix, PlannedOperator):
        operator = matrix
        _PLAN_HITS.inc()
        dispatch = "spmm.plan"
    else:
        _PLAN_MISSES.inc()
        dispatch = "spmm.legacy"
        if sparse.issparse(matrix) and matrix.format == "csr":
            forward = matrix
        else:
            count_conversion("tocsr")
            forward = matrix.tocsr()
        # Per-call operator: the transpose is built lazily inside
        # ``PlannedOperator.backward`` and only when autograd will
        # actually use it, fixing the old eager ``csr.T.tocsr()`` that
        # held large transposed copies alive even under ``no_grad``.
        operator = PlannedOperator(forward)
    with detail_span(dispatch):
        out_data = _spmm(operator.forward, x.data)

    if not (x.requires_grad and is_grad_enabled()):
        return x._make(out_data, (x,), None, "sparse_matmul")

    def backward(grad):
        x._accumulate(_spmm(operator.backward, grad), owned=True)

    return x._make(out_data, (x,), backward, "sparse_matmul")
