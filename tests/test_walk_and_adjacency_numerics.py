"""Numerical tests for walk sampling and adjacency normalization."""

import numpy as np
import pytest

from repro.data import MISSING, Table
from repro.graph import build_table_graph
from repro.gnn import column_adjacencies
from repro.embeddings import WalkGraph, build_walk_graph, generate_walks


class TestWeightedSampling:
    def test_sampling_matches_weights(self):
        graph = WalkGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 3.0)
        rng = np.random.default_rng(0)
        counts = {1: 0, 2: 0}
        for _ in range(4000):
            counts[graph.sample_neighbor(0, rng)] += 1
        ratio = counts[2] / counts[1]
        assert 2.4 < ratio < 3.7  # expected 3:1

    def test_isolated_node_returns_none(self):
        graph = WalkGraph(2)
        assert graph.sample_neighbor(1, np.random.default_rng(0)) is None

    def test_adding_edge_invalidates_cache(self):
        graph = WalkGraph(3)
        graph.add_edge(0, 1, 1.0)
        rng = np.random.default_rng(0)
        graph.sample_neighbor(0, rng)  # builds the cumulative cache
        graph.add_edge(0, 2, 1e9)      # overwhelms the old edge
        samples = {graph.sample_neighbor(0, rng) for _ in range(50)}
        assert 2 in samples


class TestNullExtensionWeights:
    def test_frequency_proportional_weights(self):
        # Missing city in row 2; "paris" occurs 3x, "rome" 1x -> walks
        # from the RID should prefer paris ~3:1.
        table = Table({
            "city": ["paris", "paris", MISSING, "paris", "rome"],
        })
        table_graph = build_table_graph(table)
        walk_graph = build_walk_graph(table_graph, table,
                                      null_extension=True)
        rid = table_graph.rid_nodes[2]
        paris = table_graph.cell_node("city", "paris")
        rome = table_graph.cell_node("city", "rome")
        rng = np.random.default_rng(1)
        counts = {paris: 0, rome: 0}
        for _ in range(3000):
            neighbour = walk_graph.sample_neighbor(rid, rng)
            counts[neighbour] += 1
        assert counts[paris] > 2 * counts[rome]


class TestAdjacencyNumerics:
    @pytest.fixture
    def table_graph(self):
        table = Table({
            "a": ["x", "x", "y", MISSING],
            "b": ["p", "q", "p", "q"],
        })
        return build_table_graph(table)

    def test_row_normalized_rows_sum_to_one(self, table_graph):
        for adjacency in column_adjacencies(table_graph,
                                            normalization="row").values():
            sums = np.asarray(adjacency.sum(axis=1)).reshape(-1)
            assert np.allclose(sums, 1.0)

    def test_sym_normalized_spectrum_bounded(self, table_graph):
        for adjacency in column_adjacencies(table_graph,
                                            normalization="sym").values():
            eigenvalues = np.linalg.eigvalsh(adjacency.toarray())
            assert eigenvalues.max() <= 1.0 + 1e-9
            assert eigenvalues.min() >= -1.0 - 1e-9

    def test_edge_types_argument_selects_subset(self, table_graph):
        adjacencies = column_adjacencies(table_graph, edge_types=["a"])
        assert set(adjacencies) == {"a"}

    def test_self_loops_make_isolated_nodes_identity_rows(self, table_graph):
        adjacency = column_adjacencies(table_graph,
                                       normalization="row")["a"]
        dense = adjacency.toarray()
        # Cell nodes of column "b" have no "a" edges: their row is pure
        # self-loop.
        b_node = table_graph.cell_node("b", "p")
        expected = np.zeros(dense.shape[1])
        expected[b_node] = 1.0
        assert np.allclose(dense[b_node], expected)


class TestWalkCorpusShape:
    def test_start_nodes_argument(self):
        table = Table({"c": ["x", "y", "x"]})
        table_graph = build_table_graph(table)
        walk_graph = build_walk_graph(table_graph, table)
        walks = generate_walks(walk_graph, walks_per_node=3, walk_length=4,
                               rng=np.random.default_rng(0),
                               start_nodes=[0])
        assert len(walks) == 3
        assert all(walk[0] == 0 for walk in walks)

    def test_walks_alternate_rid_and_cell(self):
        table = Table({"c": ["x", "y", "x"]})
        table_graph = build_table_graph(table)
        walk_graph = build_walk_graph(table_graph, table,
                                      null_extension=False)
        rid_nodes = set(table_graph.rid_nodes)
        walks = generate_walks(walk_graph, walks_per_node=2, walk_length=6,
                               rng=np.random.default_rng(0))
        for walk in walks:
            for first, second in zip(walk, walk[1:]):
                # Bipartite walk: RID and cell nodes alternate.
                assert (first in rid_nodes) != (second in rid_nodes)
