"""Dense layers and containers used across GRIMP and the baselines."""

from __future__ import annotations

import numpy as np

from ..tensor import (Tensor, dropout as dropout_fn, get_default_dtype,
                      layer_norm as layer_norm_fn, linear as linear_fn)
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Embedding",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "MLP",
]


class Linear(Module):
    """Affine transform ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Random generator for Xavier initialization (defaults to a fresh
        generator, but callers should pass one for reproducibility).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RPR005] -- documented seedable fallback; callers pass rng
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(in_features, out_features, rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        # Batched inputs (n, ..., in_features) are flattened so both the
        # forward product and its backward run as one large GEMM instead
        # of n small ones — the weight gradient in particular would
        # otherwise materialize an (n, in, out) batched intermediate.
        # The fused kernel adds the bias in place and feeds its GEMMs
        # from the workspace arena when one is active.
        if x.ndim > 2:
            shape = x.shape
            flat = x.reshape(-1, self.in_features)
            out = linear_fn(flat, self.weight, self.bias)
            return out.reshape(*shape[:-1], self.out_features)
        return linear_fn(x, self.weight, self.bias)


class Embedding(Module):
    """Learnable lookup table of shape ``(num_embeddings, dim)``."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None,
                 initial: np.ndarray | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RPR005] -- documented seedable fallback; callers pass rng
        self.num_embeddings = num_embeddings
        self.dim = dim
        if initial is not None:
            if initial.shape != (num_embeddings, dim):
                raise ValueError(f"initial embeddings have shape {initial.shape}, "
                                 f"expected {(num_embeddings, dim)}")
            self.weight = Parameter(initial.copy())
        else:
            self.weight = Parameter(init.normal((num_embeddings, dim),
                                                std=1.0 / np.sqrt(dim), rng=rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.weight[np.asarray(indices, dtype=np.int64)]


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU activation."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RPR005] -- documented seedable fallback; callers pass rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self.rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=get_default_dtype()))
        self.beta = Parameter(np.zeros(dim, dtype=get_default_dtype()))

    def forward(self, x: Tensor) -> Tensor:
        # Fused kernel: one graph node, workspace-pooled buffers.
        return layer_norm_fn(x, self.gamma, self.beta, eps=self.eps)


class Sequential(Module):
    """Container that applies modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with ReLU between hidden layers.

    The paper notes that "shallow architectures (up to three linear
    layers) are enough to obtain good classification results" (§3.5);
    this class builds exactly such stacks.
    """

    def __init__(self, dims: list[int], rng: np.random.Generator | None = None,
                 dropout: float = 0.0, activation: str = "relu"):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RPR005] -- documented seedable fallback; callers pass rng
        activations = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}")
        layers: list[Module] = []
        for position, (fan_in, fan_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(fan_in, fan_out, rng=rng))
            is_last = position == len(dims) - 2
            if not is_last:
                layers.append(activations[activation]())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
