"""Tests for the workspace arena (Layer 13, ``repro.tensor.arena``).

Three layers of guarantees:

* the :class:`Workspace` pool itself — rent/reset semantics, hit/miss
  accounting, stale-shape trimming, telemetry flush;
* the pooled kernels — fused ``linear``/``layer_norm`` gradcheck, and
  the bit-identity contract: arena-on and arena-off runs produce the
  *same bits* end to end on every training path (serial full-graph,
  minibatch, sampled, data-parallel shards);
* the interaction with the ``REPRO_ANOMALY`` sanitizer — buffer reuse
  must neither mis-attribute the first bad value nor manufacture
  spurious findings from stale NaN left in returned pool buffers.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import AnomalyError, detect_anomalies
from repro.core import GrimpConfig, GrimpImputer
from repro.corruption import inject_mcar
from repro.data import Table
from repro.sampling import FrozenGraph, NeighborSampler, SubgraphPlanCache
from repro.telemetry.registry import counter
from repro.tensor import (
    Tensor,
    WORKSPACE,
    Workspace,
    arena_enabled,
    gradcheck,
    linear,
    layer_norm,
    set_arena_enabled,
    use_workspace,
)
from repro.tensor.arena import _env_enabled


@pytest.fixture(autouse=True)
def arena_default():
    """Every test starts and ends with the arena enabled (the default)
    and no workspace active."""
    set_arena_enabled(True)
    WORKSPACE.active = None
    yield
    set_arena_enabled(True)
    WORKSPACE.active = None


class TestWorkspace:
    def test_rent_returns_exact_shape_and_dtype(self):
        workspace = Workspace()
        array = workspace.rent((3, 4), np.dtype("float32"))
        assert array.shape == (3, 4)
        assert array.dtype == np.float32

    def test_reset_recycles_buffers(self):
        workspace = Workspace()
        first = workspace.rent((8,), np.dtype("float32"))
        workspace.reset()
        second = workspace.rent((8,), np.dtype("float32"))
        assert second is first
        stats = workspace.stats()
        assert stats["pool_hits"] == 1
        assert stats["pool_misses"] == 1

    def test_no_double_handout_within_one_scope(self):
        workspace = Workspace()
        first = workspace.rent((4,), np.dtype("float32"))
        second = workspace.rent((4,), np.dtype("float32"))
        assert first is not second

    def test_distinct_keys_never_alias(self):
        workspace = Workspace()
        a = workspace.rent((4,), np.dtype("float32"))
        b = workspace.rent((4,), np.dtype("float64"))
        c = workspace.rent((2, 2), np.dtype("float32"))
        assert {id(a), id(b), id(c)} == {id(a)} | {id(b)} | {id(c)}

    def test_bytes_requested_accumulates(self):
        workspace = Workspace()
        workspace.rent((4,), np.dtype("float32"))
        workspace.reset()
        workspace.rent((4,), np.dtype("float32"))
        assert workspace.stats()["bytes_requested"] == 32

    def test_peak_bytes_tracks_held_high_water(self):
        workspace = Workspace()
        workspace.rent((256,), np.dtype("float32"))
        workspace.rent((256,), np.dtype("float32"))
        workspace.reset()
        # Steady state re-rents the same two buffers: peak is flat.
        workspace.rent((256,), np.dtype("float32"))
        workspace.rent((256,), np.dtype("float32"))
        workspace.reset()
        assert workspace.stats()["peak_bytes"] == 2 * 1024

    def test_stale_shapes_trimmed_after_horizon(self):
        workspace = Workspace(trim_after=2)
        stale = workspace.rent((16,), np.dtype("float32"))
        workspace.reset()
        for _ in range(3):
            workspace.rent((8,), np.dtype("float32"))
            workspace.reset()
        fresh = workspace.rent((16,), np.dtype("float32"))
        assert fresh is not stale  # the old pool was released
        # The recurring shape is still pooled.
        recurring = workspace.rent((8,), np.dtype("float32"))
        assert workspace.stats()["pool_hits"] >= 3
        assert recurring.shape == (8,)

    def test_recurring_shape_survives_trim(self):
        workspace = Workspace(trim_after=2)
        kept = workspace.rent((16,), np.dtype("float32"))
        workspace.reset()
        for _ in range(6):
            assert workspace.rent((16,), np.dtype("float32")) is kept
            workspace.reset()

    def test_reset_flushes_global_telemetry(self):
        hits = counter("arena.pool_hits")
        misses = counter("arena.pool_misses")
        requested = counter("arena.bytes_requested")
        before = (hits.value, misses.value, requested.value)
        workspace = Workspace()
        workspace.rent((4,), np.dtype("float32"))
        workspace.reset()
        workspace.rent((4,), np.dtype("float32"))
        # Pending tallies flush at reset, not per rent.
        assert (hits.value, misses.value, requested.value) == \
            (before[0], before[1] + 1, before[2] + 16)
        workspace.reset()
        assert (hits.value, misses.value, requested.value) == \
            (before[0] + 1, before[1] + 1, before[2] + 32)


class TestUseWorkspace:
    def test_activates_and_restores(self):
        workspace = Workspace()
        assert WORKSPACE.active is None
        with use_workspace(workspace):
            assert WORKSPACE.active is workspace
        assert WORKSPACE.active is None

    def test_none_is_a_no_op(self):
        outer = Workspace()
        WORKSPACE.active = outer
        with use_workspace(None):
            assert WORKSPACE.active is outer
        assert WORKSPACE.active is outer

    def test_nesting_restores_the_outer_workspace(self):
        outer, inner = Workspace(), Workspace()
        with use_workspace(outer):
            with use_workspace(inner):
                assert WORKSPACE.active is inner
            assert WORKSPACE.active is outer
        assert WORKSPACE.active is None

    def test_restores_on_exception(self):
        workspace = Workspace()
        with pytest.raises(RuntimeError):
            with use_workspace(workspace):
                raise RuntimeError("boom")
        assert WORKSPACE.active is None

    def test_env_parsing(self):
        assert _env_enabled(None)  # default on
        assert _env_enabled("1")
        assert not _env_enabled("0")
        assert not _env_enabled("")
        assert not _env_enabled("false")

    def test_set_enabled_round_trip(self):
        assert arena_enabled()
        set_arena_enabled(False)
        assert not arena_enabled()
        set_arena_enabled(True)
        assert arena_enabled()


class TestFusedKernels:
    def test_linear_gradcheck(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        weight = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        bias = Tensor(rng.normal(size=(4,)), requires_grad=True)
        assert gradcheck(
            lambda a, w, b: (linear(a, w, b) ** 2).sum(),
            [x, weight, bias])

    def test_linear_matches_composed(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(6, 3)).astype(np.float32)
        w = rng.normal(size=(3, 4)).astype(np.float32)
        b = rng.normal(size=(4,)).astype(np.float32)

        def run(fused):
            x = Tensor(data.copy(), requires_grad=True)
            weight = Tensor(w.copy(), requires_grad=True)
            bias = Tensor(b.copy(), requires_grad=True)
            if fused:
                out = linear(x, weight, bias)
            else:
                out = x @ weight + bias
            (out ** 2).sum().backward()
            return out.data, x.grad, weight.grad, bias.grad

        for fused_part, composed_part in zip(run(True), run(False)):
            assert np.array_equal(fused_part, composed_part)

    def test_layer_norm_gradcheck(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        gamma = Tensor(rng.normal(size=(6,)), requires_grad=True)
        beta = Tensor(rng.normal(size=(6,)), requires_grad=True)
        assert gradcheck(
            lambda a, g, b: (layer_norm(a, g, b) ** 2).sum(),
            [x, gamma, beta])

    def test_pooled_step_is_bit_identical(self):
        """One optimizer-style loop with and without a workspace must
        produce identical bits — the single-code-path contract."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=(8, 5)).astype(np.float32)
        w = rng.normal(size=(5, 4)).astype(np.float32)

        def run(workspace):
            x = Tensor(data.copy(), requires_grad=True)
            weight = Tensor(w.copy(), requires_grad=True)
            grads = []
            for _ in range(3):
                with use_workspace(workspace):
                    out = (x @ weight).relu()
                    loss = (out ** 2).sum()
                    loss.backward()
                    grads.append((x.grad.copy(), weight.grad.copy(),
                                  float(loss.data)))
                    x.zero_grad()
                    weight.zero_grad()
                if workspace is not None:
                    workspace.reset()
            return grads

        pooled = run(Workspace())
        fresh = run(None)
        for (gx_a, gw_a, loss_a), (gx_b, gw_b, loss_b) in zip(pooled,
                                                              fresh):
            assert np.array_equal(gx_a, gx_b)
            assert np.array_equal(gw_a, gw_b)
            assert loss_a == loss_b


class TestPlanCacheArenas:
    def _subgraphs(self):
        from scipy import sparse

        rng = np.random.default_rng(0)
        dense = (rng.random((12, 12)) < 0.3).astype(np.float32)
        np.fill_diagonal(dense, 1.0)
        dense /= dense.sum(axis=1, keepdims=True)
        frozen = FrozenGraph.freeze({"a": sparse.csr_matrix(dense)})
        sampler = NeighborSampler(frozen, fanout=0)
        return [sampler.sample(np.array([seed]), 1)
                for seed in (0, 1, 0)]

    def test_arena_attached_on_first_hit_not_on_compile(self):
        first, second, repeat = self._subgraphs()
        cache = SubgraphPlanCache(capacity=4, arenas=True)
        plan = cache.get(first)
        assert getattr(plan, "arena", None) is None  # compile-once
        cache.get(second)
        hit = cache.get(repeat)
        assert hit is plan
        assert isinstance(plan.arena, Workspace)

    def test_arenas_flag_disables_attachment(self):
        first, _, repeat = self._subgraphs()
        cache = SubgraphPlanCache(capacity=4, arenas=False)
        cache.get(first)
        plan = cache.get(repeat)
        assert getattr(plan, "arena", None) is None

    def test_arena_stats_sums_cached_entries(self):
        first, second, repeat = self._subgraphs()
        cache = SubgraphPlanCache(capacity=4, arenas=True)
        cache.get(first)
        cache.get(second)
        plan = cache.get(repeat)
        plan.arena.rent((4,), np.dtype("float32"))
        plan.arena.reset()
        totals = cache.arena_stats()
        assert totals["pool_misses"] == 1
        assert totals["bytes_requested"] == 16


def structured_table(n_rows=48, seed=0):
    rng = np.random.default_rng(seed)
    cities = ["paris", "rome", "berlin"]
    country_of = {"paris": "france", "rome": "italy", "berlin": "germany"}
    population_of = {"paris": 2.1, "rome": 2.8, "berlin": 3.6}
    chosen = [cities[index] for index in rng.integers(0, 3, n_rows)]
    return Table({
        "city": chosen,
        "country": [country_of[city] for city in chosen],
        "population": [population_of[city] + rng.normal(0, 0.05)
                       for city in chosen],
    })


BASE = GrimpConfig(feature_dim=8, gnn_dim=12, merge_dim=12, epochs=4,
                   patience=4, lr=1e-2, seed=0)


def _fit(config):
    corruption = inject_mcar(structured_table(), 0.2,
                             np.random.default_rng(1))
    imputer = GrimpImputer(config)
    imputed = imputer.impute(corruption.dirty)
    history = [(entry["train_loss"], entry["validation_loss"])
               for entry in imputer.history_]
    cells = [imputed.get(row, column)
             for column in imputed.column_names
             for row in range(imputed.n_rows)]
    return history, cells, imputer


def _assert_on_off_identical(config):
    set_arena_enabled(True)
    history_on, cells_on, imputer = _fit(config)
    set_arena_enabled(False)
    history_off, cells_off, _ = _fit(config)
    set_arena_enabled(True)
    assert history_on == history_off
    assert cells_on == cells_off
    return imputer


class TestBitIdentityGoldens:
    """Arena-on and arena-off runs must match to the last bit on every
    training path — loss history and every imputed cell."""

    def test_serial_full_graph(self):
        imputer = _assert_on_off_identical(BASE)
        stats = imputer.timings_["meta"]["arena"]["fit"]
        assert stats["pool_hits"] > stats["pool_misses"]

    def test_minibatch(self):
        _assert_on_off_identical(
            dataclasses.replace(BASE, batch_size=16))

    def test_sampled(self):
        # fanout=0 keeps whole neighborhoods: subgraph signatures
        # recur across epochs, so plan-cache arenas actually engage.
        imputer = _assert_on_off_identical(
            dataclasses.replace(BASE, batch_size=16, fanout=0))
        totals = imputer.plan_cache_.arena_stats()
        assert totals["pool_hits"] > 0

    def test_sampled_finite_fanout(self):
        _assert_on_off_identical(
            dataclasses.replace(BASE, batch_size=16, fanout=3))

    def test_dp_shards(self):
        _assert_on_off_identical(
            dataclasses.replace(BASE, epochs=2, batch_size=16, fanout=3,
                                dp_shards=2))


@pytest.mark.filterwarnings("ignore:divide by zero")
@pytest.mark.filterwarnings("ignore:invalid value")
class TestArenaAnomalyInteraction:
    def test_backward_inf_attributed_with_pooled_buffers(self):
        """First-bad-value attribution survives buffer reuse: the op
        named is still the producer, not a later pooled consumer."""
        workspace = Workspace()
        # Warm the pool so the failing step runs entirely on reuse.
        with use_workspace(workspace):
            x = Tensor(np.array([4.0]), requires_grad=True)
            x.sqrt().sum().backward()
        workspace.reset()
        with use_workspace(workspace):
            x = Tensor(np.array([0.0]), requires_grad=True)
            y = x.sqrt().sum()
            with detect_anomalies():
                with pytest.raises(AnomalyError) as excinfo:
                    y.backward()
        workspace.reset()
        assert excinfo.value.phase == "backward"
        assert excinfo.value.op == "pow"
        assert excinfo.value.kind == "inf"

    def test_stale_nan_in_pool_causes_no_spurious_error(self):
        """A NaN-poisoned step must not leak NaN into the next step
        through the pool: every kernel fully overwrites its buffer."""
        workspace = Workspace()
        with use_workspace(workspace):
            x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            (x * float("nan")).sum().backward()  # poison the buffers
        workspace.reset()
        with use_workspace(workspace):
            x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            with detect_anomalies():
                loss = (x * 3.0).sum()
                loss.backward()  # must reuse buffers and stay silent
        workspace.reset()
        np.testing.assert_array_equal(x.grad, [3.0, 3.0])

    def test_forward_nan_attributed_under_workspace(self):
        with use_workspace(Workspace()):
            x = Tensor([1.0, 2.0], requires_grad=True)
            with detect_anomalies():
                with pytest.raises(AnomalyError) as excinfo:
                    x * float("nan")
        assert excinfo.value.op == "mul"
        assert excinfo.value.phase == "forward"
