"""Tests for the telemetry subsystem: tracer, registry, events, manifest.

Covers the ISSUE-3 acceptance surface: span nesting and exception
safety, exact aggregation under bounded retention, the JSONL
round-trip rendering identically to the live tracer, plan-cache
counter correctness, and run-manifest schema validation.
"""

import json
import threading

import numpy as np
import pytest
from scipy import sparse

from repro.gnn.plan import MessagePassingPlan
from repro.gnn.sparse import _PLAN_HITS, _PLAN_MISSES, sparse_matmul
from repro.telemetry import (
    MANIFEST_SCHEMA,
    NO_OP_SPAN,
    TENSOR_OPS,
    Tracer,
    build_manifest,
    counter,
    current_tracer,
    detail_span,
    enabled,
    gauge,
    get_registry,
    load_manifest,
    read_events,
    render_tree,
    replay,
    set_enabled,
    validate_manifest,
    write_jsonl,
    write_manifest,
)
from repro.tensor import Tensor


@pytest.fixture
def telemetry_off():
    """Ensure detailed telemetry is off before and after a test."""
    previous = enabled()
    set_enabled(False)
    yield
    set_enabled(previous)


@pytest.fixture
def telemetry_on():
    previous = enabled()
    set_enabled(True)
    yield
    set_enabled(previous)


class TestSpanNesting:
    def test_paths_join_the_ancestry(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("train"):
                with tracer.span("epoch"):
                    pass
        paths = [span.path for span in tracer.spans()]
        assert paths == ["fit/train/epoch", "fit/train", "fit"]

    def test_siblings_share_the_parent_prefix(self):
        tracer = Tracer()
        with tracer.span("epoch"):
            with tracer.span("forward"):
                pass
            with tracer.span("backward"):
                pass
        aggregate = tracer.aggregate()
        assert "epoch/forward" in aggregate
        assert "epoch/backward" in aggregate

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError, match="must not contain"):
            Tracer().span("a/b")

    def test_attrs_set_and_add(self):
        tracer = Tracer()
        with tracer.span("epoch", epoch=3) as span:
            span.set(loss=0.5)
            span.add("steps")
            span.add("steps")
        recorded = tracer.spans()[0]
        assert recorded.attrs == {"epoch": 3, "loss": 0.5, "steps": 2}

    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait(timeout=5)
                with tracer.span("inner"):
                    pass

        threads = [threading.Thread(target=work, args=(name,))
                   for name in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        paths = {span.path for span in tracer.spans()}
        assert paths == {"a", "b", "a/inner", "b/inner"}


class TestExceptionSafety:
    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("explodes"):
                raise RuntimeError("boom")
        span = tracer.spans()[0]
        assert span.status == "error"
        assert span.error == "RuntimeError"
        assert tracer.aggregate()["explodes"]["errors"] == 1
        assert not tracer.has_open_spans()

    def test_error_in_child_unwinds_the_whole_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fit"):
                with tracer.span("train"):
                    raise ValueError("nope")
        assert not tracer.has_open_spans()
        assert tracer.aggregate()["fit"]["errors"] == 1

    def test_out_of_order_exit_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            tracer._exit(outer)


class TestAggregation:
    def test_exact_under_eviction(self):
        tracer = Tracer(max_spans=3)
        for _ in range(10):
            with tracer.span("work"):
                pass
        assert len(tracer.spans()) == 3
        assert tracer.dropped == 7
        assert tracer.aggregate()["work"]["count"] == 10

    def test_aggregate_only_mode(self):
        tracer = Tracer(max_spans=0)
        for _ in range(5):
            with tracer.span("request"):
                pass
        assert tracer.spans() == []
        assert tracer.aggregate()["request"]["count"] == 5

    def test_clear_resets(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        tracer.clear()
        assert tracer.aggregate() == {}
        assert tracer.spans() == []


class TestActivation:
    def test_detail_span_requires_enabled_and_active(self, telemetry_off):
        tracer = Tracer()
        assert detail_span("x") is NO_OP_SPAN
        with tracer.activate():
            assert detail_span("x") is NO_OP_SPAN   # enabled() is False
        set_enabled(True)
        assert detail_span("x") is NO_OP_SPAN       # no active tracer
        with tracer.activate():
            with detail_span("x"):
                pass
        assert tracer.aggregate()["x"]["count"] == 1

    def test_activation_restores_previous(self):
        first, second = Tracer(), Tracer()
        with first.activate():
            with second.activate():
                assert current_tracer() is second
            assert current_tracer() is first
        assert current_tracer() is None


class TestJsonlRoundTrip:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("train"):
                for epoch in range(2):
                    with tracer.span("epoch", epoch=epoch) as span:
                        span.set(loss=1.0 / (epoch + 1))
        return tracer

    def test_replay_renders_identically(self, tmp_path):
        tracer = self._traced()
        live = render_tree(tracer.spans())
        path = write_jsonl(tracer, tmp_path / "trace.jsonl",
                           run={"kind": "test"},
                           counters={"registry": {}})
        replayed = render_tree(replay(read_events(path)))
        assert replayed == live

    def test_header_and_counters_lines(self, tmp_path):
        tracer = self._traced()
        path = write_jsonl(tracer, tmp_path / "trace.jsonl",
                           run={"kind": "test"},
                           counters={"c": 1})
        events = read_events(path)
        assert events[0]["type"] == "run"
        assert events[0]["run"] == {"kind": "test"}
        assert events[-1] == {"type": "counters", "counters": {"c": 1}}

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "run", "schema": "other/9"})
                        + "\n")
        with pytest.raises(ValueError, match="not a repro.trace-events"):
            read_events(path)

    def test_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_events(path)

    def test_replay_requires_span_fields(self):
        with pytest.raises(ValueError, match="missing 'duration'"):
            replay([{"type": "span", "id": 1, "name": "x", "path": "x",
                     "status": "ok"}])


class TestManifest:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("fit"):
            pass
        manifest = build_manifest({"kind": "test"}, tracer=tracer,
                                  metrics={"speedup": 2.0})
        path = write_manifest(manifest, tmp_path / "manifest.json")
        loaded = load_manifest(path)
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["metrics"] == {"speedup": 2.0}
        assert "fit" in loaded["spans"]

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            build_manifest({"kind": "test"}, metrics={"bad": "fast"})

    def test_boolean_metric_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            build_manifest({"kind": "test"}, metrics={"bad": True})

    def test_unknown_schema_rejected(self):
        manifest = build_manifest({"kind": "test"})
        manifest["schema"] = "repro.run-manifest/999"
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            validate_manifest(manifest)

    def test_missing_field_rejected(self):
        manifest = build_manifest({"kind": "test"})
        del manifest["counters"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_manifest(manifest)


class TestRegistry:
    def test_counter_and_gauge(self):
        c = counter("test.registry.hits", "test counter")
        base = c.value
        c.inc()
        c.inc(2)
        assert c.value == base + 3
        g = gauge("test.registry.depth", "test gauge")
        g.set(7)
        snapshot = get_registry().snapshot()
        assert snapshot["test.registry.hits"] == base + 3
        assert snapshot["test.registry.depth"] == 7

    def test_negative_increment_rejected(self):
        c = counter("test.registry.neg", "test counter")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_name_returns_same_instance(self):
        assert counter("test.registry.same", "a") is \
            counter("test.registry.same", "b")

    def test_type_conflict_rejected(self):
        counter("test.registry.conflict", "a counter")
        with pytest.raises(TypeError):
            gauge("test.registry.conflict", "now a gauge")


class TestPlanCacheCounters:
    def _matrix(self):
        rng = np.random.default_rng(0)
        return sparse.random(8, 8, density=0.4, random_state=rng,
                             format="coo")

    def test_planned_dispatch_counts_hits(self):
        plan = MessagePassingPlan({"c": self._matrix().tocsr()})
        x = Tensor(np.ones((8, 3)))
        before = _PLAN_HITS.value
        sparse_matmul(plan["c"], x)
        sparse_matmul(plan["c"], x)
        assert _PLAN_HITS.value == before + 2

    def test_legacy_dispatch_counts_misses(self):
        x = Tensor(np.ones((8, 3)))
        before = _PLAN_MISSES.value
        sparse_matmul(self._matrix(), x)
        assert _PLAN_MISSES.value == before + 1

    def test_registry_mirrors_conversion_counts(self):
        snapshot_before = get_registry().snapshot()
        x = Tensor(np.ones((8, 3)))
        sparse_matmul(self._matrix(), x)     # coo -> csr conversion
        snapshot_after = get_registry().snapshot()
        assert snapshot_after["plan.conversions.tocsr"] == \
            snapshot_before["plan.conversions.tocsr"] + 1


class TestTensorOpCounters:
    def test_disabled_records_nothing(self, telemetry_off):
        before = TENSOR_OPS.snapshot()["total_ops"]
        (Tensor(np.ones(4)) + Tensor(np.ones(4))).sum()
        assert TENSOR_OPS.snapshot()["total_ops"] == before

    def test_enabled_records_ops_and_bytes(self, telemetry_on):
        TENSOR_OPS.reset()
        (Tensor(np.ones(4)) + Tensor(np.ones(4))).sum()
        snapshot = TENSOR_OPS.snapshot()
        assert snapshot["ops"].get("add") == 1
        assert snapshot["total_ops"] >= 2
        assert snapshot["total_bytes"] > 0
        TENSOR_OPS.reset()

    def test_set_enabled_wires_the_tensor_counters(self, telemetry_off):
        assert TENSOR_OPS.enabled is False
        set_enabled(True)
        assert TENSOR_OPS.enabled is True
