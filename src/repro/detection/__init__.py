"""Error-detection substrate: mark suspicious cells before imputation
(the orthogonal detection step assumed by the paper's §2)."""

from .detectors import (
    Detector,
    NumericOutlierDetector,
    RareValueDetector,
    FdViolationDetector,
    EnsembleDetector,
    mark_errors,
)

__all__ = [
    "Detector",
    "NumericOutlierDetector",
    "RareValueDetector",
    "FdViolationDetector",
    "EnsembleDetector",
    "mark_errors",
]
