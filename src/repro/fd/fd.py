"""Functional dependencies over :class:`~repro.data.Table`.

FDs are the "external information" GRIMP consumes through the
weak-diagonal+FD attention strategy (§3.5) and that FD-REPAIR /
FUNFOREST exploit in §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data import MISSING, Table

__all__ = ["FunctionalDependency", "fd_holds", "fd_violations"]


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``lhs -> rhs``.

    Attributes
    ----------
    lhs:
        Premise attributes (left-hand side), stored as a sorted tuple.
    rhs:
        Conclusion attribute (right-hand side).
    """

    lhs: tuple[str, ...]
    rhs: str

    def __post_init__(self):
        if not self.lhs:
            raise ValueError("an FD needs at least one premise attribute")
        if self.rhs in self.lhs:
            raise ValueError("trivial FD: rhs appears in lhs")
        object.__setattr__(self, "lhs", tuple(sorted(self.lhs)))

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes the FD mentions (premise + conclusion)."""
        return self.lhs + (self.rhs,)

    def __str__(self) -> str:
        return f"{', '.join(self.lhs)} -> {self.rhs}"


def _complete_groups(table: Table, fd: FunctionalDependency):
    """Yield ``(lhs_values, rhs_value, row)`` for rows with no missing
    cell among the FD's attributes."""
    columns = {name: table.column(name) for name in fd.attributes}
    for row in range(table.n_rows):
        if any(columns[name][row] is MISSING for name in fd.attributes):
            continue
        key = tuple(columns[name][row] for name in fd.lhs)
        yield key, columns[fd.rhs][row], row


def fd_holds(table: Table, fd: FunctionalDependency) -> bool:
    """Whether the FD holds on all rows that are complete over its
    attributes (missing cells neither satisfy nor violate)."""
    seen: dict[tuple, object] = {}
    for key, value, _ in _complete_groups(table, fd):
        if key in seen and seen[key] != value:
            return False
        seen.setdefault(key, value)
    return True


def fd_violations(table: Table, fd: FunctionalDependency) -> list[tuple[int, int]]:
    """Pairs of row indices that jointly violate the FD (same premise,
    different conclusion).  Each offending row pair is reported once,
    using the first row that established the premise's value."""
    first_row: dict[tuple, tuple[int, object]] = {}
    violations: list[tuple[int, int]] = []
    for key, value, row in _complete_groups(table, fd):
        if key in first_row:
            anchor_row, anchor_value = first_row[key]
            if anchor_value != value:
                violations.append((anchor_row, row))
        else:
            first_row[key] = (row, value)
    return violations
