"""Tests for loss functions and functional ops (softmax, dropout, ...)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    softmax,
    log_softmax,
    cross_entropy,
    focal_loss,
    mse_loss,
    rmse_loss,
    binary_cross_entropy,
    dropout,
    embedding_lookup,
    gradcheck,
)

RNG = np.random.default_rng(7)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(RNG.standard_normal((5, 4)))
        probs = softmax(logits)
        assert np.allclose(probs.data.sum(axis=-1), 1.0)

    def test_log_softmax_is_log_of_softmax(self):
        logits = Tensor(RNG.standard_normal((3, 6)))
        assert np.allclose(log_softmax(logits).data,
                           np.log(softmax(logits).data))

    def test_softmax_invariant_to_shift(self):
        logits = RNG.standard_normal((2, 3))
        a = softmax(Tensor(logits)).data
        b = softmax(Tensor(logits + 100.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_gradcheck(self):
        logits = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        assert gradcheck(lambda x: (log_softmax(x) ** 2).sum(), [logits])

    def test_softmax_handles_extreme_logits(self):
        logits = Tensor(np.array([[1000.0, -1000.0, 0.0]]))
        probs = softmax(logits).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_is_log_k(self):
        k = 5
        logits = Tensor(np.zeros((3, k)))
        loss = cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(k))

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        targets = RNG.integers(0, 4, size=6)
        assert gradcheck(lambda x: cross_entropy(x, targets), [logits])

    def test_sum_and_none_reductions(self):
        logits = Tensor(RNG.standard_normal((4, 3)))
        targets = np.array([0, 1, 2, 0])
        per_sample = cross_entropy(logits, targets, reduction="none")
        assert per_sample.shape == (4,)
        assert cross_entropy(logits, targets, reduction="sum").item() == \
            pytest.approx(per_sample.data.sum())
        assert cross_entropy(logits, targets).item() == \
            pytest.approx(per_sample.data.mean())

    def test_sample_weights(self):
        logits = Tensor(RNG.standard_normal((2, 3)))
        targets = np.array([0, 2])
        unweighted = cross_entropy(logits, targets, reduction="none").data
        weighted = cross_entropy(logits, targets, weights=np.array([2.0, 0.0]),
                                 reduction="sum")
        assert weighted.item() == pytest.approx(2.0 * unweighted[0])

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]),
                          reduction="bogus")


class TestFocalLoss:
    def test_reduces_to_ce_at_gamma_zero(self):
        logits = Tensor(RNG.standard_normal((5, 3)))
        targets = RNG.integers(0, 3, size=5)
        assert focal_loss(logits, targets, gamma=0.0).item() == \
            pytest.approx(cross_entropy(logits, targets).item())

    def test_downweights_confident_predictions(self):
        confident = Tensor(np.array([[10.0, 0.0]]))
        uncertain = Tensor(np.array([[0.2, 0.0]]))
        target = np.array([0])
        ratio_focal = focal_loss(confident, target).item() / \
            focal_loss(uncertain, target).item()
        ratio_ce = cross_entropy(confident, target).item() / \
            cross_entropy(uncertain, target).item()
        assert ratio_focal < ratio_ce

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        targets = RNG.integers(0, 3, size=4)
        assert gradcheck(lambda x: focal_loss(x, targets), [logits])


class TestRegressionLosses:
    def test_mse_zero_on_equal_inputs(self):
        x = Tensor(RNG.standard_normal(10))
        assert mse_loss(x, x.data).item() == pytest.approx(0.0)

    def test_mse_matches_numpy(self):
        a, b = RNG.standard_normal(8), RNG.standard_normal(8)
        assert mse_loss(Tensor(a), b).item() == pytest.approx(np.mean((a - b) ** 2))

    def test_rmse_is_sqrt_of_mse(self):
        a, b = RNG.standard_normal(8), RNG.standard_normal(8)
        assert rmse_loss(Tensor(a), b).item() == \
            pytest.approx(np.sqrt(np.mean((a - b) ** 2)), abs=1e-5)

    def test_mse_gradcheck(self):
        predictions = Tensor(RNG.standard_normal(6), requires_grad=True)
        targets = RNG.standard_normal(6)
        assert gradcheck(lambda x: mse_loss(x, targets), [predictions])

    def test_rmse_gradcheck(self):
        predictions = Tensor(RNG.standard_normal(6), requires_grad=True)
        targets = RNG.standard_normal(6)
        assert gradcheck(lambda x: rmse_loss(x, targets), [predictions])


class TestBinaryCrossEntropy:
    def test_matches_formula(self):
        probs = np.array([0.9, 0.1])
        targets = np.array([1.0, 0.0])
        expected = -np.mean(np.log([0.9, 0.9]))
        assert binary_cross_entropy(Tensor(probs), targets).item() == \
            pytest.approx(expected)

    def test_gradcheck(self):
        probs = Tensor(RNG.uniform(0.1, 0.9, size=5), requires_grad=True)
        targets = RNG.integers(0, 2, size=5).astype(float)
        assert gradcheck(lambda x: binary_cross_entropy(x, targets), [probs])


class TestDropout:
    def test_inactive_at_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_zero_probability_is_identity(self):
        x = Tensor(np.ones(5))
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))


class TestEmbeddingLookup:
    def test_gathers_rows(self):
        weight = Tensor(RNG.standard_normal((7, 3)), requires_grad=True)
        out = embedding_lookup(weight, [2, 2, 5])
        assert out.shape == (3, 3)
        assert np.allclose(out.data[0], weight.data[2])

    def test_gradients_scatter_add(self):
        weight = Tensor(RNG.standard_normal((4, 2)), requires_grad=True)
        embedding_lookup(weight, [1, 1, 0]).sum().backward()
        assert np.allclose(weight.grad[1], [2.0, 2.0])
        assert np.allclose(weight.grad[0], [1.0, 1.0])
        assert np.allclose(weight.grad[2], [0.0, 0.0])
