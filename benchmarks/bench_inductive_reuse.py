"""Extension experiment: inductive reuse of a trained GRIMP model (§7).

Train once on a corrupted sample of a dataset, then impute a *fresh*
batch of tuples (same schema, unseen rows) without retraining — the
"GRIMP is inductive ... it can be reused" direction of the conclusions.

Asserted shapes: reuse imputation is orders of magnitude faster than
retraining, and its accuracy lands near the transductive run's.
"""

import time

import numpy as np
import pytest

from repro.core import GrimpConfig, GrimpImputer
from repro.corruption import inject_mcar
from repro.datasets import load
from repro.metrics import evaluate_imputation
from conftest import save_artifact


def _run():
    config = GrimpConfig(feature_dim=16, gnn_dim=24, merge_dim=32,
                         epochs=60, patience=8, lr=1e-2, seed=0)
    # One draw of the data-generating process, split into a training
    # portion and a batch of fresh, unseen tuples (same distribution).
    full = load("flare", n_rows=420, seed=0)
    train_clean = full.select_rows(range(300))
    fresh_clean = full.select_rows(range(300, 420))
    train_corruption = inject_mcar(train_clean, 0.2,
                                   np.random.default_rng(1))
    imputer = GrimpImputer(config)
    imputer.impute(train_corruption.dirty)
    train_seconds = imputer.train_seconds_

    fresh_corruption = inject_mcar(fresh_clean, 0.2,
                                   np.random.default_rng(2))
    started = time.perf_counter()
    reused = imputer.impute_new_rows(fresh_corruption.dirty)
    reuse_seconds = time.perf_counter() - started
    reuse_score = evaluate_imputation(fresh_corruption, reused)

    retrained = GrimpImputer(config).impute(fresh_corruption.dirty)
    retrain_score = evaluate_imputation(fresh_corruption, retrained)
    return (train_seconds, reuse_seconds, reuse_score.accuracy,
            retrain_score.accuracy)


@pytest.mark.benchmark(group="inductive")
def test_inductive_reuse(benchmark):
    train_seconds, reuse_seconds, reuse_accuracy, retrain_accuracy = \
        benchmark.pedantic(_run, rounds=1, iterations=1)
    text = "\n".join([
        "Inductive reuse — Flare, 20% missing",
        f"initial training:        {train_seconds:8.2f}s",
        f"reuse on 120 new rows:   {reuse_seconds:8.2f}s",
        f"reuse accuracy:          {reuse_accuracy:8.3f}",
        f"retrain-from-scratch:    {retrain_accuracy:8.3f}",
    ])
    save_artifact("inductive", text)

    # Reuse skips training entirely.
    assert reuse_seconds < train_seconds / 10
    # And stays in the same accuracy band as retraining from scratch.
    assert reuse_accuracy > retrain_accuracy - 0.12
