"""Configuration for the GRIMP imputer (paper defaults in §4.1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..embeddings import FEATURE_STRATEGIES
from ..fd import FunctionalDependency
from .tasks import K_STRATEGIES

__all__ = ["GrimpConfig"]


@dataclass
class GrimpConfig:
    """Hyper-parameters of GRIMP.

    Paper defaults: attention tasks with the weak-diagonal K strategy,
    300 epochs with early termination when the validation error
    increases, two GNN layers of width 64, two shared merge layers of
    width 128, and a 20% validation hold-out.  The reproduction's
    defaults shrink dimensions slightly (numpy substrate) but keep every
    structural choice; benchmarks document the profile they use.
    """

    #: Node-feature initialization: "fasttext" (GRIMP-FT), "embdi"
    #: (GRIMP-E), or "random".
    feature_strategy: str = "fasttext"
    #: Dimensionality of the initial node features.
    feature_dim: int = 32
    #: Refine the pre-trained node features during training (the GNN
    #: then *refines* rather than merely consumes them, §3.4).
    train_features: bool = True
    #: Hidden/output widths of the two GNN layers (#P_GNN in Table 1).
    gnn_dim: int = 64
    #: Width of the shared merge layers (#P_Lin in Table 1).
    merge_dim: int = 64
    #: Task heads: "attention" (paper default) or "linear".
    task_kind: str = "attention"
    #: K-matrix strategy for attention tasks (Figure 7).
    k_strategy: str = "weak_diagonal"
    #: Functional dependencies for the weak_diagonal_fd strategy.
    fds: tuple[FunctionalDependency, ...] = field(default_factory=tuple)
    #: Augment the graph with direct premise->conclusion FD edges
    #: (§3.2's "easily augmented" hook); requires ``fds``.
    augment_fd_edges: bool = False
    #: Categorical loss: "cross_entropy" or "focal" (§3.6).
    categorical_loss: str = "cross_entropy"
    #: Maximum training epochs (paper: 300).
    epochs: int = 60
    #: Early-stopping patience on the validation loss.
    patience: int = 5
    #: Fraction of training samples held out for validation (§3.6: 20%).
    validation_fraction: float = 0.2
    #: Fraction of the remaining training samples actually used — the
    #: training-data-reduction efficiency knob of §7 (1.0 = all).
    corpus_fraction: float = 1.0
    #: Adam learning rate.
    lr: float = 5e-3
    #: Training samples per step within each task; ``None`` = full batch.
    #: Minibatching bounds per-epoch memory on paper-size tables.
    batch_size: int | None = None
    #: Neighbors sampled per node per edge type per hop
    #: (:mod:`repro.sampling`).  ``None`` keeps the full-graph paths;
    #: ``0`` minibatches over *exact* (unbounded) neighborhoods — the
    #: golden-parity setting; ``k >= 1`` draws ``k`` weighted neighbors
    #: per hop, bounding per-step memory independently of table size.
    #: Requires ``batch_size``.
    fanout: int | None = None
    #: LRU capacity of the compiled-plan cache for sampled subgraphs.
    plan_cache_size: int = 16
    #: Data-parallel shards per epoch (:mod:`repro.distributed`).
    #: ``None`` keeps sampled training serial; ``k >= 1`` partitions
    #: each epoch's minibatch schedule into ``k`` fixed shards trained
    #: in parallel and reduced by sample-weighted averaging.  Results
    #: depend on the shard count but NOT on the worker count; ``1`` is
    #: bit-identical to serial sampled training.  Requires ``fanout``.
    dp_shards: int | None = None
    #: Worker processes for data-parallel training (default:
    #: ``$REPRO_WORKERS`` or 1, clamped to ``dp_shards``).  Any value
    #: produces bit-identical results at fixed ``dp_shards``.
    dp_workers: int | None = None
    #: GNN sub-module type for every column ("sage" or "gcn").
    gnn_layer_type: str = "sage"
    #: Training dtype: "float32" (default, ~2x faster on the dense hot
    #: path) or "float64" (bit-compatible with the original engine).
    dtype: str = "float32"
    #: Precompile the message-passing plan (cached CSR forward/backward
    #: operators and gather matrices).  Disable only to reproduce the
    #: legacy per-call-conversion path, e.g. for benchmarking.
    mp_plan: bool = True
    #: Random seed for initialization, splits, and feature init.
    seed: int = 0
    #: Extra keyword arguments for the EmbDI embedder (GRIMP-E).
    embdi_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.feature_strategy not in FEATURE_STRATEGIES:
            raise ValueError(f"unknown feature strategy "
                             f"{self.feature_strategy!r}")
        if self.task_kind not in ("attention", "linear"):
            raise ValueError(f"unknown task kind {self.task_kind!r}")
        if self.k_strategy not in K_STRATEGIES:
            raise ValueError(f"unknown K strategy {self.k_strategy!r}")
        if self.categorical_loss not in ("cross_entropy", "focal"):
            raise ValueError(f"unknown categorical loss "
                             f"{self.categorical_loss!r}")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if not 0.0 < self.corpus_fraction <= 1.0:
            raise ValueError("corpus_fraction must be in (0, 1]")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive when set")
        if self.fanout is not None:
            if self.fanout < 0:
                raise ValueError("fanout must be >= 0 when set")
            if self.batch_size is None:
                raise ValueError("fanout requires batch_size (sampled "
                                 "training is minibatched)")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be positive")
        if self.dp_shards is not None:
            if self.dp_shards < 1:
                raise ValueError("dp_shards must be >= 1 when set")
            if self.fanout is None:
                raise ValueError("dp_shards requires fanout (data-"
                                 "parallel training shards the sampled "
                                 "minibatch schedule)")
        if self.dp_workers is not None:
            if self.dp_workers < 1:
                raise ValueError("dp_workers must be >= 1 when set")
            if self.dp_shards is None:
                raise ValueError("dp_workers requires dp_shards")
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"unknown dtype {self.dtype!r}; "
                             f"choose float32 or float64")
