"""Scale study: how imputation accuracy grows with dataset size.

Not a paper artefact, but the calibration behind EXPERIMENTS.md's scale
caveat: the numpy substrate forces reduced row counts, and embedding
methods (GRIMP) are more data-hungry than trees (MissForest), which
shifts the Figure 8 ranking at small scale.  This bench quantifies the
trend on Adult.

Asserted shape: GRIMP's accuracy increases with rows, and the
GRIMP-to-MissForest gap narrows as the table grows.
"""

import numpy as np
import pytest

from repro.corruption import inject_mcar
from repro.datasets import load
from repro.experiments import make_imputer
from repro.metrics import evaluate_imputation
from conftest import save_artifact

ROW_COUNTS = (120, 300, 600)


def _run():
    rows = []
    for n_rows in ROW_COUNTS:
        clean = load("adult", n_rows=n_rows, seed=0)
        corruption = inject_mcar(clean, 0.2, np.random.default_rng(1))
        scores = {}
        for algorithm in ("grimp-ft", "misf"):
            imputer = make_imputer(algorithm, seed=0)
            score = evaluate_imputation(corruption,
                                        imputer.impute(corruption.dirty))
            scores[algorithm] = score.accuracy
        rows.append((n_rows, scores["grimp-ft"], scores["misf"]))
    return rows


@pytest.mark.benchmark(group="scale")
def test_accuracy_vs_scale(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["Scale study — Adult @ 20% missing",
             f"{'rows':>6}{'grimp-ft':>10}{'misf':>10}{'gap':>8}"]
    for n_rows, grimp, misf in rows:
        lines.append(f"{n_rows:>6}{grimp:>10.3f}{misf:>10.3f}"
                     f"{misf - grimp:>8.3f}")
    save_artifact("scale", "\n".join(lines))

    grimp_accuracies = [grimp for _, grimp, _ in rows]
    # GRIMP improves with data.
    assert grimp_accuracies[-1] > grimp_accuracies[0]
    # The tree-vs-embedding gap narrows as rows grow.
    first_gap = rows[0][2] - rows[0][1]
    last_gap = rows[-1][2] - rows[-1][1]
    assert last_gap < first_gap + 0.02
