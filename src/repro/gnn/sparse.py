"""Autograd support for products with constant sparse matrices.

GNN message passing multiplies node features by a (fixed) normalized
adjacency matrix; only the features carry gradients, so the backward
pass is simply ``A.T @ grad``.
"""

from __future__ import annotations

from scipy import sparse

from ..tensor import Tensor

__all__ = ["sparse_matmul"]


def sparse_matmul(matrix: sparse.spmatrix, x: Tensor) -> Tensor:
    """Compute ``matrix @ x`` where ``matrix`` is a constant scipy sparse
    matrix and ``x`` a dense ``(n, d)`` tensor.

    Gradients flow only into ``x``.
    """
    if matrix.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {x.shape}")
    csr = matrix.tocsr()
    out_data = csr @ x.data
    transposed = csr.T.tocsr()

    def backward(grad):
        x._accumulate(transposed @ grad)

    return x._make(out_data, (x,), backward, "sparse_matmul")
