"""Training-loop helpers: early stopping and mini-batch iteration.

GRIMP holds out 20% of training samples for validation and stops early
when the validation loss increases (§3.6); :class:`EarlyStopping`
implements that policy with a configurable patience.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["EarlyStopping", "minibatches", "train_validation_split"]


class EarlyStopping:
    """Track a validation metric and signal when to stop.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before
        :meth:`update` returns ``True`` (stop).
    min_delta:
        Minimum decrease in the metric to count as an improvement.
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best = float("inf")
        self.best_epoch = -1
        self._bad_epochs = 0
        self.stopped = False

    def update(self, value: float, epoch: int) -> bool:
        """Record ``value`` for ``epoch``; return ``True`` when training
        should stop."""
        if value < self.best - self.min_delta:
            self.best = value
            self.best_epoch = epoch
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
        self.stopped = self._bad_epochs >= self.patience
        return self.stopped


def train_validation_split(n: int, validation_fraction: float,
                           rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Shuffle ``range(n)`` and split into (train, validation) index arrays."""
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in [0, 1)")
    permutation = rng.permutation(n)
    n_validation = int(round(n * validation_fraction))
    if n_validation >= n and n > 0:
        n_validation = n - 1
    return permutation[n_validation:], permutation[:n_validation]


def minibatches(n: int, batch_size: int, rng: np.random.Generator | None = None,
                shuffle: bool = True) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    indices = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RPR005] -- documented seedable fallback; trainers pass rng
        indices = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield indices[start:start + batch_size]
