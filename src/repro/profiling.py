"""Lightweight wall-clock profiling with nested, named phases.

The trainer wires a :class:`Profiler` through the fit/impute pipeline
(exposed as ``GrimpImputer.timings_``) so every run reports where its
wall-clock went — the foundation for the hot-path benchmarks and for
catching performance regressions in CI.

Usage::

    profiler = Profiler()
    with profiler.phase("train"):
        with profiler.phase("forward"):
            ...                      # recorded as "train/forward"
    profiler.report()
    # {"train": {"seconds": ..., "count": 1},
    #  "train/forward": {"seconds": ..., "count": 1}}

Phases nest via a stack: entering ``"forward"`` inside ``"train"``
records under the compound key ``"train/forward"``.  Re-entering a phase
accumulates seconds and bumps its count, so per-epoch phases report
totals plus how many epochs ran.  :meth:`Profiler.declare` pre-registers
keys so reports have a stable key set even for phases that never ran
(e.g. a zero-iteration loop).
"""

from __future__ import annotations

import time

__all__ = ["Profiler", "PhaseTimer"]


class PhaseTimer:
    """Context manager measuring one (possibly nested) phase."""

    __slots__ = ("_profiler", "_name", "_key", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "PhaseTimer":
        self._key = self._profiler._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._start
        self._profiler._pop(self._key, elapsed)
        return False


class Profiler:
    """Accumulates wall-clock seconds per named (nested) phase."""

    def __init__(self):
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._stack: list[str] = []
        #: Free-form metadata merged into :meth:`report` output (counter
        #: snapshots, configuration echoes, ...).
        self.meta: dict[str, object] = {}

    # ------------------------------------------------------------------
    def phase(self, name: str) -> PhaseTimer:
        """Context manager recording a phase under the current nesting."""
        if "/" in name:
            raise ValueError("phase names must not contain '/'; "
                             "nesting builds compound keys")
        return PhaseTimer(self, name)

    def declare(self, *names: str) -> None:
        """Pre-register phase keys with zero totals (stable report keys)."""
        for name in names:
            self._seconds.setdefault(name, 0.0)
            self._counts.setdefault(name, 0)

    # ------------------------------------------------------------------
    def _push(self, name: str) -> str:
        key = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(key)
        return key

    def _pop(self, key: str, elapsed: float) -> None:
        if not self._stack or self._stack[-1] != key:
            raise RuntimeError(f"phase {key!r} exited out of order")
        self._stack.pop()
        self._seconds[key] = self._seconds.get(key, 0.0) + elapsed
        self._counts[key] = self._counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    def seconds(self, key: str) -> float:
        """Total seconds recorded under a compound key (0.0 if absent)."""
        return self._seconds.get(key, 0.0)

    def count(self, key: str) -> int:
        """How many times a compound key was entered."""
        return self._counts.get(key, 0)

    def report(self) -> dict[str, dict[str, float]]:
        """Per-phase totals: ``{key: {"seconds": s, "count": n}}``.

        Well-formed even when nothing was recorded (empty dict plus any
        declared keys); ``meta`` is attached under the ``"meta"`` key
        only when non-empty so phase keys stay the dominant namespace.
        """
        if self._stack:
            raise RuntimeError(f"cannot report with open phases: "
                               f"{self._stack}")
        result: dict[str, dict[str, float]] = {
            key: {"seconds": self._seconds[key],
                  "count": self._counts.get(key, 0)}
            for key in self._seconds
        }
        if self.meta:
            result["meta"] = dict(self.meta)
        return result
