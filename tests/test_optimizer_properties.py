"""Property-based convergence tests for the optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Adam, SGD, Parameter
from repro.tensor import Tensor


def quadratic_loss(parameter, target):
    diff = parameter - Tensor(target)
    return (diff * diff).sum()


class TestConvergence:
    @given(seed=st.integers(0, 100),
           scale=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=15, deadline=None)
    def test_adam_converges_on_quadratic(self, seed, scale):
        rng = np.random.default_rng(seed)
        target = rng.standard_normal(4) * scale
        parameter = Parameter(np.zeros(4))
        # Adam moves ~lr per step while far from the optimum (normalized
        # updates), so give it enough steps for the largest targets.
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(800):
            optimizer.zero_grad()
            quadratic_loss(parameter, target).backward()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=0.05)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_sgd_monotone_on_convex(self, seed):
        rng = np.random.default_rng(seed)
        target = rng.standard_normal(3)
        parameter = Parameter(np.zeros(3))
        optimizer = SGD([parameter], lr=0.05)
        losses = []
        for _ in range(50):
            optimizer.zero_grad()
            loss = quadratic_loss(parameter, target)
            losses.append(loss.item())
            loss.backward()
            optimizer.step()
        # Strictly decreasing on a convex quadratic with a small step.
        assert all(a >= b - 1e-12 for a, b in zip(losses, losses[1:]))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_adam_invariant_to_loss_scale_direction(self, seed):
        # Adam normalizes by second moments: scaling the loss by a
        # constant should leave the *direction* of the first step
        # unchanged and keep magnitudes close.
        rng = np.random.default_rng(seed)
        target = rng.standard_normal(3) + 2.0

        def first_step(multiplier):
            parameter = Parameter(np.zeros(3))
            optimizer = Adam([parameter], lr=0.01)
            optimizer.zero_grad()
            (quadratic_loss(parameter, target) * multiplier).backward()
            optimizer.step()
            return parameter.data.copy()

        a = first_step(1.0)
        b = first_step(100.0)
        assert np.allclose(a, b, atol=1e-6)

    def test_clip_prevents_divergence(self):
        parameter = Parameter(np.array([1e3]))
        optimizer = SGD([parameter], lr=1.0)
        for _ in range(20):
            optimizer.zero_grad()
            (parameter * parameter).sum().backward()
            optimizer.clip_grad_norm(1.0)
            optimizer.step()
        assert np.isfinite(parameter.data).all()
